//! Hyperledger Fabric message structures (v1.4 wire layout).
//!
//! Field numbers follow the real Fabric `.proto` definitions
//! (`common/common.proto`, `peer/transaction.proto`,
//! `peer/proposal_response.proto`, `ledger/rwset/*.proto`, `msp/identities.proto`),
//! so a marshaled block produced here has the same nested structure — and
//! the same ~20-layer decode cost — that the paper's §3.2 analysis
//! describes for real Fabric blocks.
//!
//! Every type provides `marshal`/`unmarshal`; unknown fields are skipped
//! on decode, mirroring protobuf semantics.

use crate::wire::{ProtoReader, ProtoWriter, WireError};

/// Generates `marshal`/`unmarshal` boilerplate-free accessors is overkill
/// here; each message is written out explicitly for auditability.
macro_rules! unmarshal_loop {
    ($bytes:expr, $field:ident => $body:block) => {{
        let mut reader = ProtoReader::new($bytes);
        while let Some($field) = reader.next_field()? {
            $body
        }
    }};
}

/// Outermost wrapper of a transaction: signed payload.
/// (`common.Envelope`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Envelope {
    /// Marshaled [`Payload`].
    pub payload: Vec<u8>,
    /// Client signature over `payload`.
    pub signature: Vec<u8>,
}

impl Envelope {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::with_capacity(self.payload.len() + self.signature.len() + 8);
        w.bytes(1, &self.payload);
        w.bytes(2, &self.signature);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = Envelope::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.payload = f.data.to_vec(),
                2 => m.signature = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Payload of an envelope: header + app data. (`common.Payload`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Payload {
    /// The transaction header pair.
    pub header: Header,
    /// Marshaled [`Transaction`] (for endorser transactions).
    pub data: Vec<u8>,
}

impl Payload {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        let hdr = self.header.marshal();
        w.bytes(1, &hdr);
        w.bytes(2, &self.data);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = Payload::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.header = Header::unmarshal(f.data)?,
                2 => m.data = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Channel + signature header pair. (`common.Header`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Header {
    /// Marshaled [`ChannelHeader`].
    pub channel_header: Vec<u8>,
    /// Marshaled [`SignatureHeader`].
    pub signature_header: Vec<u8>,
}

impl Header {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.channel_header);
        w.bytes(2, &self.signature_header);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = Header::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.channel_header = f.data.to_vec(),
                2 => m.signature_header = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Transaction type discriminators used in [`ChannelHeader::header_type`].
pub mod header_type {
    /// Orderer configuration transaction.
    pub const CONFIG: u64 = 1;
    /// Standard endorser transaction.
    pub const ENDORSER_TRANSACTION: u64 = 3;
}

/// Channel-scoped routing metadata. (`common.ChannelHeader`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelHeader {
    /// One of [`header_type`].
    pub header_type: u64,
    /// Message protocol version.
    pub version: u64,
    /// Seconds since epoch (simplified from `google.protobuf.Timestamp`).
    pub timestamp: u64,
    /// Channel name.
    pub channel_id: String,
    /// Transaction id (hex of SHA-256 over nonce++creator).
    pub tx_id: String,
    /// Epoch (unused, kept for layout fidelity).
    pub epoch: u64,
}

impl ChannelHeader {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.uint64(1, self.header_type);
        w.uint64(2, self.version);
        w.uint64(3, self.timestamp);
        w.string(4, &self.channel_id);
        w.string(5, &self.tx_id);
        w.uint64(6, self.epoch);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = ChannelHeader::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.header_type = f.value,
                2 => m.version = f.value,
                3 => m.timestamp = f.value,
                4 => m.channel_id = utf8(f.data)?,
                5 => m.tx_id = utf8(f.data)?,
                6 => m.epoch = f.value,
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Creator identity + nonce. (`common.SignatureHeader`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SignatureHeader {
    /// Marshaled [`SerializedIdentity`] of the creator.
    pub creator: Vec<u8>,
    /// Random nonce ensuring tx-id uniqueness.
    pub nonce: Vec<u8>,
}

impl SignatureHeader {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.creator);
        w.bytes(2, &self.nonce);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = SignatureHeader::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.creator = f.data.to_vec(),
                2 => m.nonce = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// MSP identity wrapper: org MSP id + certificate bytes.
/// (`msp.SerializedIdentity`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SerializedIdentity {
    /// MSP name, e.g. `"Org1MSP"`.
    pub mspid: String,
    /// The X.509-lite certificate bytes (the ~860-byte payload the BMac
    /// protocol replaces with a 16-bit id).
    pub id_bytes: Vec<u8>,
}

impl SerializedIdentity {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.string(1, &self.mspid);
        w.bytes(2, &self.id_bytes);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = SerializedIdentity::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.mspid = utf8(f.data)?,
                2 => m.id_bytes = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// The transaction action list. (`peer.Transaction`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transaction {
    /// Usually exactly one action for endorser transactions.
    pub actions: Vec<TransactionAction>,
}

impl Transaction {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        for a in &self.actions {
            w.bytes(1, &a.marshal());
        }
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = Transaction::default();
        unmarshal_loop!(bytes, f => {
            if f.number == 1 {
                m.actions.push(TransactionAction::unmarshal(f.data)?);
            }
        });
        Ok(m)
    }
}

/// One action of a transaction. (`peer.TransactionAction`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransactionAction {
    /// Marshaled [`SignatureHeader`] (proposal creator).
    pub header: Vec<u8>,
    /// Marshaled [`ChaincodeActionPayload`].
    pub payload: Vec<u8>,
}

impl TransactionAction {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.header);
        w.bytes(2, &self.payload);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = TransactionAction::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.header = f.data.to_vec(),
                2 => m.payload = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Proposal payload + endorsed action. (`peer.ChaincodeActionPayload`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaincodeActionPayload {
    /// Marshaled chaincode proposal payload (invocation args).
    pub chaincode_proposal_payload: Vec<u8>,
    /// The endorsed action.
    pub action: ChaincodeEndorsedAction,
}

impl ChaincodeActionPayload {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.chaincode_proposal_payload);
        w.bytes(2, &self.action.marshal());
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = ChaincodeActionPayload::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.chaincode_proposal_payload = f.data.to_vec(),
                2 => m.action = ChaincodeEndorsedAction::unmarshal(f.data)?,
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Proposal response + endorsements. (`peer.ChaincodeEndorsedAction`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaincodeEndorsedAction {
    /// Marshaled [`ProposalResponsePayload`] — the bytes every endorser
    /// signed.
    pub proposal_response_payload: Vec<u8>,
    /// One endorsement per endorsing peer.
    pub endorsements: Vec<Endorsement>,
}

impl ChaincodeEndorsedAction {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.proposal_response_payload);
        for e in &self.endorsements {
            w.bytes(2, &e.marshal());
        }
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = ChaincodeEndorsedAction::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.proposal_response_payload = f.data.to_vec(),
                2 => m.endorsements.push(Endorsement::unmarshal(f.data)?),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// A single endorsement. (`peer.Endorsement`)
///
/// The signature covers `proposal_response_payload ++ endorser` — the
/// "endorsement data" the BMac `HashCalculator` hashes per endorsement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Endorsement {
    /// Marshaled [`SerializedIdentity`] of the endorser peer.
    pub endorser: Vec<u8>,
    /// ECDSA signature (DER).
    pub signature: Vec<u8>,
}

impl Endorsement {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.endorser);
        w.bytes(2, &self.signature);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = Endorsement::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.endorser = f.data.to_vec(),
                2 => m.signature = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// What endorsers signed. (`peer.ProposalResponsePayload`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProposalResponsePayload {
    /// Hash of the original proposal.
    pub proposal_hash: Vec<u8>,
    /// Marshaled [`ChaincodeAction`].
    pub extension: Vec<u8>,
}

impl ProposalResponsePayload {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.proposal_hash);
        w.bytes(2, &self.extension);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = ProposalResponsePayload::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.proposal_hash = f.data.to_vec(),
                2 => m.extension = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// The simulated execution result. (`peer.ChaincodeAction`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaincodeAction {
    /// Marshaled [`TxReadWriteSet`].
    pub results: Vec<u8>,
    /// Chaincode events (opaque).
    pub events: Vec<u8>,
    /// Chaincode response status (200 = OK).
    pub response_status: u64,
    /// Invoked chaincode id.
    pub chaincode_id: ChaincodeId,
}

impl ChaincodeAction {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.results);
        w.bytes(2, &self.events);
        if self.response_status != 0 {
            w.message(3, |r| r.uint64(1, self.response_status));
        }
        w.bytes(4, &self.chaincode_id.marshal());
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = ChaincodeAction::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.results = f.data.to_vec(),
                2 => m.events = f.data.to_vec(),
                3 => {
                    unmarshal_loop!(f.data, g => {
                        if g.number == 1 {
                            m.response_status = g.value;
                        }
                    });
                }
                4 => m.chaincode_id = ChaincodeId::unmarshal(f.data)?,
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Chaincode coordinates. (`peer.ChaincodeID`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaincodeId {
    /// Deployment path (unused here).
    pub path: String,
    /// Chaincode name, e.g. `"smallbank"`.
    pub name: String,
    /// Chaincode version.
    pub version: String,
}

impl ChaincodeId {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.string(1, &self.path);
        w.string(2, &self.name);
        w.string(3, &self.version);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = ChaincodeId::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.path = utf8(f.data)?,
                2 => m.name = utf8(f.data)?,
                3 => m.version = utf8(f.data)?,
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Read/write sets across namespaces. (`rwset.TxReadWriteSet`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxReadWriteSet {
    /// Data model discriminator (0 = KV).
    pub data_model: u64,
    /// Per-namespace rwsets.
    pub ns_rwset: Vec<NsReadWriteSet>,
}

impl TxReadWriteSet {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.uint64(1, self.data_model);
        for ns in &self.ns_rwset {
            w.bytes(2, &ns.marshal());
        }
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = TxReadWriteSet::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.data_model = f.value,
                2 => m.ns_rwset.push(NsReadWriteSet::unmarshal(f.data)?),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// One namespace's rwset. (`rwset.NsReadWriteSet`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NsReadWriteSet {
    /// Namespace = chaincode name.
    pub namespace: String,
    /// Marshaled [`KvRwSet`].
    pub rwset: Vec<u8>,
}

impl NsReadWriteSet {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.string(1, &self.namespace);
        w.bytes(2, &self.rwset);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = NsReadWriteSet::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.namespace = utf8(f.data)?,
                2 => m.rwset = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Key-level reads and writes. (`kvrwset.KVRWSet`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvRwSet {
    /// Keys read during simulation, with their observed versions.
    pub reads: Vec<KvRead>,
    /// Keys to write on commit. (Field 3 in the real proto; field 2 is
    /// range query info, which we do not model.)
    pub writes: Vec<KvWrite>,
}

impl KvRwSet {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        for r in &self.reads {
            w.bytes(1, &r.marshal());
        }
        for wr in &self.writes {
            w.bytes(3, &wr.marshal());
        }
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = KvRwSet::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.reads.push(KvRead::unmarshal(f.data)?),
                3 => m.writes.push(KvWrite::unmarshal(f.data)?),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// A read with its expected version. (`kvrwset.KVRead`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvRead {
    /// State key.
    pub key: String,
    /// Version observed at simulation time; `None` for a missing key.
    pub version: Option<Version>,
}

impl KvRead {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.string(1, &self.key);
        if let Some(v) = &self.version {
            // A present version must survive the roundtrip even when both
            // fields are zero, so emit the submessage unconditionally
            // rather than with skip-if-empty `bytes` semantics.
            w.message(2, |m| {
                m.uint64(1, v.block_num);
                m.uint64(2, v.tx_num);
            });
        }
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = KvRead::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.key = utf8(f.data)?,
                2 => m.version = Some(Version::unmarshal(f.data)?),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Height-based version: block number + tx index. (`kvrwset.Version`)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version {
    /// Committing block number.
    pub block_num: u64,
    /// Transaction index within that block.
    pub tx_num: u64,
}

impl Version {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.uint64(1, self.block_num);
        w.uint64(2, self.tx_num);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = Version::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.block_num = f.value,
                2 => m.tx_num = f.value,
                _ => {}
            }
        });
        Ok(m)
    }
}

/// A write. (`kvrwset.KVWrite`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvWrite {
    /// State key.
    pub key: String,
    /// Whether the key is deleted.
    pub is_delete: bool,
    /// New value (empty for deletes).
    pub value: Vec<u8>,
}

impl KvWrite {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.string(1, &self.key);
        w.boolean(2, self.is_delete);
        w.bytes(3, &self.value);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = KvWrite::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.key = utf8(f.data)?,
                2 => m.is_delete = f.value != 0,
                3 => m.value = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// A block. (`common.Block`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Block header (number + hashes).
    pub header: BlockHeader,
    /// Marshaled envelopes.
    pub data: BlockData,
    /// Block metadata (orderer signature, tx validation flags, ...).
    pub metadata: BlockMetadata,
}

impl Block {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.header.marshal());
        w.bytes(2, &self.data.marshal());
        w.bytes(3, &self.metadata.marshal());
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = Block::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.header = BlockHeader::unmarshal(f.data)?,
                2 => m.data = BlockData::unmarshal(f.data)?,
                3 => m.metadata = BlockMetadata::unmarshal(f.data)?,
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Block header. (`common.BlockHeader`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockHeader {
    /// Block sequence number.
    pub number: u64,
    /// Hash of the previous block header.
    pub previous_hash: Vec<u8>,
    /// Hash over the block data.
    pub data_hash: Vec<u8>,
}

impl BlockHeader {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.uint64(1, self.number);
        w.bytes(2, &self.previous_hash);
        w.bytes(3, &self.data_hash);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = BlockHeader::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.number = f.value,
                2 => m.previous_hash = f.data.to_vec(),
                3 => m.data_hash = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

/// Block body: repeated marshaled envelopes. (`common.BlockData`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockData {
    /// One marshaled [`Envelope`] per transaction.
    pub data: Vec<Vec<u8>>,
}

impl BlockData {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        for d in &self.data {
            w.bytes(1, d);
        }
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = BlockData::default();
        unmarshal_loop!(bytes, f => {
            if f.number == 1 {
                m.data.push(f.data.to_vec());
            }
        });
        Ok(m)
    }
}

/// Indexes into [`BlockMetadata::metadata`] (matching Fabric's
/// `common.BlockMetadataIndex`).
pub mod metadata_index {
    /// Orderer signatures over the block.
    pub const SIGNATURES: usize = 0;
    /// (Legacy last-config index.)
    pub const LAST_CONFIG: usize = 1;
    /// Per-transaction validation codes, one byte per tx.
    pub const TRANSACTIONS_FILTER: usize = 2;
    /// Commit hash written by the peer.
    pub const COMMIT_HASH: usize = 3;
    /// Number of metadata slots.
    pub const COUNT: usize = 4;
}

/// Block metadata. (`common.BlockMetadata`)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMetadata {
    /// Fixed slots per [`metadata_index`].
    pub metadata: Vec<Vec<u8>>,
}

impl Default for BlockMetadata {
    fn default() -> Self {
        BlockMetadata {
            metadata: vec![Vec::new(); metadata_index::COUNT],
        }
    }
}

impl BlockMetadata {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        for d in &self.metadata {
            // Fabric always emits all metadata slots, even empty ones, so
            // slot positions are preserved: use message framing.
            w.message(1, |inner| {
                inner.bytes(1, d);
            });
        }
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut slots = Vec::new();
        unmarshal_loop!(bytes, f => {
            if f.number == 1 {
                let mut value = Vec::new();
                unmarshal_loop!(f.data, g => {
                    if g.number == 1 {
                        value = g.data.to_vec();
                    }
                });
                slots.push(value);
            }
        });
        while slots.len() < metadata_index::COUNT {
            slots.push(Vec::new());
        }
        Ok(BlockMetadata { metadata: slots })
    }
}

/// Metadata signature wrapper. (`common.Metadata` + `MetadataSignature`)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetadataSignature {
    /// Marshaled [`SignatureHeader`] of the signer (the orderer).
    pub signature_header: Vec<u8>,
    /// Signature over `value ++ signature_header ++ block header bytes`.
    pub signature: Vec<u8>,
}

impl MetadataSignature {
    /// Serializes to protobuf bytes.
    pub fn marshal(&self) -> Vec<u8> {
        let mut w = ProtoWriter::new();
        w.bytes(1, &self.signature_header);
        w.bytes(2, &self.signature);
        w.into_bytes()
    }

    /// Parses from protobuf bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed input.
    pub fn unmarshal(bytes: &[u8]) -> Result<Self, WireError> {
        let mut m = MetadataSignature::default();
        unmarshal_loop!(bytes, f => {
            match f.number {
                1 => m.signature_header = f.data.to_vec(),
                2 => m.signature = f.data.to_vec(),
                _ => {}
            }
        });
        Ok(m)
    }
}

fn utf8(b: &[u8]) -> Result<String, WireError> {
    String::from_utf8(b.to_vec()).map_err(|_| WireError::Semantic("invalid utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope {
            payload: vec![1, 2, 3],
            signature: vec![4, 5],
        };
        assert_eq!(Envelope::unmarshal(&e.marshal()).unwrap(), e);
    }

    #[test]
    fn channel_header_roundtrip() {
        let ch = ChannelHeader {
            header_type: header_type::ENDORSER_TRANSACTION,
            version: 1,
            timestamp: 1_700_000_000,
            channel_id: "mychannel".into(),
            tx_id: "abcd1234".into(),
            epoch: 0,
        };
        assert_eq!(ChannelHeader::unmarshal(&ch.marshal()).unwrap(), ch);
    }

    #[test]
    fn rwset_roundtrip() {
        let rw = KvRwSet {
            reads: vec![
                KvRead {
                    key: "acc1".into(),
                    version: Some(Version {
                        block_num: 5,
                        tx_num: 2,
                    }),
                },
                KvRead {
                    key: "acc2".into(),
                    version: None,
                },
            ],
            writes: vec![
                KvWrite {
                    key: "acc1".into(),
                    is_delete: false,
                    value: b"100".to_vec(),
                },
                KvWrite {
                    key: "old".into(),
                    is_delete: true,
                    value: vec![],
                },
            ],
        };
        assert_eq!(KvRwSet::unmarshal(&rw.marshal()).unwrap(), rw);
    }

    #[test]
    fn block_roundtrip_with_metadata_slots() {
        let mut b = Block {
            header: BlockHeader {
                number: 42,
                previous_hash: vec![9; 32],
                data_hash: vec![7; 32],
            },
            data: BlockData {
                data: vec![vec![1, 2], vec![3, 4, 5]],
            },
            metadata: BlockMetadata::default(),
        };
        b.metadata.metadata[metadata_index::TRANSACTIONS_FILTER] = vec![0, 1];
        let parsed = Block::unmarshal(&b.marshal()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.metadata.metadata.len(), metadata_index::COUNT);
    }

    #[test]
    fn metadata_preserves_empty_slots() {
        let mut md = BlockMetadata::default();
        md.metadata[metadata_index::COMMIT_HASH] = vec![0xaa; 32];
        let parsed = BlockMetadata::unmarshal(&md.marshal()).unwrap();
        assert!(parsed.metadata[metadata_index::SIGNATURES].is_empty());
        assert_eq!(parsed.metadata[metadata_index::COMMIT_HASH], vec![0xaa; 32]);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let mut w = ProtoWriter::new();
        w.bytes(1, b"payload");
        w.uint64(99, 7); // unknown field
        w.bytes(2, b"sig");
        let e = Envelope::unmarshal(&w.into_bytes()).unwrap();
        assert_eq!(e.payload, b"payload");
        assert_eq!(e.signature, b"sig");
    }

    #[test]
    fn nested_transaction_roundtrip() {
        let tx = Transaction {
            actions: vec![TransactionAction {
                header: vec![1],
                payload: vec![2, 3],
            }],
        };
        assert_eq!(Transaction::unmarshal(&tx.marshal()).unwrap(), tx);
    }

    #[test]
    fn chaincode_action_with_response() {
        let ca = ChaincodeAction {
            results: vec![1],
            events: vec![],
            response_status: 200,
            chaincode_id: ChaincodeId {
                path: String::new(),
                name: "smallbank".into(),
                version: "1.0".into(),
            },
        };
        let parsed = ChaincodeAction::unmarshal(&ca.marshal()).unwrap();
        assert_eq!(parsed, ca);
    }
}
