//! Protocol-buffers wire format (proto3 subset), implemented from scratch.
//!
//! Fabric stores block and transaction data as marshaled protobufs; a
//! block contains "up to 23 layers" of nested messages, and "to retrieve a
//! value from a protobuf embedded in a particular layer, the receiver has
//! to recursively decode all the outer layers first" (paper §3.2). This
//! module provides the varint/length-delimited encoding those layers are
//! built from, plus a decode-effort meter used to reproduce the paper's
//! unmarshaling-cost observations.

use std::cell::Cell;
use std::fmt;

/// Wire types from the protobuf encoding spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Base-128 varint.
    Varint,
    /// Fixed 64-bit little-endian.
    Fixed64,
    /// Length-delimited bytes (strings, bytes, nested messages).
    LengthDelimited,
    /// Fixed 32-bit little-endian.
    Fixed32,
}

impl WireType {
    fn from_tag_bits(bits: u64) -> Result<Self, WireError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            5 => Ok(WireType::Fixed32),
            other => Err(WireError::BadWireType(other as u8)),
        }
    }

    fn tag_bits(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::LengthDelimited => 2,
            WireType::Fixed32 => 5,
        }
    }
}

/// Appends a base-128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Length of the varint encoding of `v` in bytes.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Serializer for protobuf messages.
///
/// ```
/// use fabric_protos::wire::ProtoWriter;
/// let mut w = ProtoWriter::new();
/// w.uint64(1, 42);
/// w.bytes(2, b"hi");
/// let buf = w.into_bytes();
/// assert_eq!(buf, vec![0x08, 42, 0x12, 2, b'h', b'i']);
/// ```
#[derive(Debug, Default)]
pub struct ProtoWriter {
    buf: Vec<u8>,
}

impl ProtoWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ProtoWriter { buf: Vec::new() }
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ProtoWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Writes a `uint64`/`uint32`/`enum` field. Zero values are skipped
    /// (proto3 default semantics).
    pub fn uint64(&mut self, field: u32, v: u64) {
        if v == 0 {
            return;
        }
        self.key(field, WireType::Varint);
        put_varint(&mut self.buf, v);
    }

    /// Writes a `bool` field (skipped when false).
    pub fn boolean(&mut self, field: u32, v: bool) {
        self.uint64(field, v as u64);
    }

    /// Writes a length-delimited field (bytes, string, or an already
    /// marshaled nested message). Empty values are skipped.
    pub fn bytes(&mut self, field: u32, v: &[u8]) {
        if v.is_empty() {
            return;
        }
        self.key(field, WireType::LengthDelimited);
        put_varint(&mut self.buf, v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a string field.
    pub fn string(&mut self, field: u32, v: &str) {
        self.bytes(field, v.as_bytes());
    }

    /// Writes a nested message built by `f`, even when empty — callers
    /// use [`ProtoWriter::bytes`] for skip-if-empty semantics.
    pub fn message<F: FnOnce(&mut ProtoWriter)>(&mut self, field: u32, f: F) {
        let mut inner = ProtoWriter::new();
        f(&mut inner);
        self.key(field, WireType::LengthDelimited);
        put_varint(&mut self.buf, inner.buf.len() as u64);
        self.buf.extend_from_slice(&inner.buf);
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn key(&mut self, field: u32, wt: WireType) {
        put_varint(&mut self.buf, ((field as u64) << 3) | wt.tag_bits());
    }
}

/// A decoded field: number, wire type and (for length-delimited) payload.
#[derive(Debug, Clone, Copy)]
pub struct Field<'a> {
    /// Field number from the tag.
    pub number: u32,
    /// Wire type from the tag.
    pub wire_type: WireType,
    /// Varint value (for [`WireType::Varint`]) or fixed-width value.
    pub value: u64,
    /// Payload for [`WireType::LengthDelimited`]; empty otherwise.
    pub data: &'a [u8],
}

/// Streaming protobuf reader over a byte slice.
///
/// Unknown fields are skippable, mirroring real protobuf decoders. The
/// reader charges every decoded byte to an optional [`DecodeMeter`] so the
/// software peer model can report unmarshaling effort (paper Figure 3).
#[derive(Debug)]
pub struct ProtoReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ProtoReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ProtoReader { buf, pos: 0 }
    }

    /// Whether all input has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Decodes the next field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed varints, bad wire types or
    /// truncated payloads. Returns `Ok(None)` at end of input.
    pub fn next_field(&mut self) -> Result<Option<Field<'a>>, WireError> {
        if self.is_at_end() {
            return Ok(None);
        }
        let tag = self.read_varint()?;
        let number = (tag >> 3) as u32;
        if number == 0 {
            return Err(WireError::ZeroFieldNumber);
        }
        let wire_type = WireType::from_tag_bits(tag & 0x7)?;
        let (value, data): (u64, &[u8]) = match wire_type {
            WireType::Varint => (self.read_varint()?, &[]),
            WireType::Fixed64 => {
                let b = self.take(8)?;
                (
                    u64::from_le_bytes(b.try_into().expect("take(8) returned 8 bytes")),
                    &[],
                )
            }
            WireType::Fixed32 => {
                let b = self.take(4)?;
                (
                    u32::from_le_bytes(b.try_into().expect("take(4) returned 4 bytes")) as u64,
                    &[],
                )
            }
            WireType::LengthDelimited => {
                let len = self.read_varint()? as usize;
                let b = self.take(len)?;
                (len as u64, b)
            }
        };
        METER.with(|m| m.set(m.get() + 1));
        Ok(Some(Field {
            number,
            wire_type,
            value,
            data,
        }))
    }

    fn read_varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
            self.pos += 1;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

thread_local! {
    static METER: Cell<u64> = const { Cell::new(0) };
}

/// Measures protobuf decode effort (fields decoded) on the current thread.
///
/// The software validator uses this to report how much unmarshaling work a
/// block costs — the quantity the BMac protocol processor eliminates.
#[derive(Debug)]
pub struct DecodeMeter {
    start: u64,
}

impl DecodeMeter {
    /// Starts measuring from the current counter value.
    pub fn start() -> Self {
        DecodeMeter {
            start: METER.with(|m| m.get()),
        }
    }

    /// Fields decoded on this thread since [`DecodeMeter::start`].
    pub fn fields_decoded(&self) -> u64 {
        METER.with(|m| m.get()) - self.start
    }
}

/// Errors decoding the protobuf wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended inside a varint or payload.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// Reserved/unsupported wire type bits.
    BadWireType(u8),
    /// Field number zero is invalid.
    ZeroFieldNumber,
    /// A submessage failed structural validation.
    Semantic(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated protobuf input"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::BadWireType(w) => write!(f, "unsupported wire type {w}"),
            WireError::ZeroFieldNumber => write!(f, "field number zero"),
            WireError::Semantic(what) => write!(f, "invalid message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len for {v}");
            let mut r = ProtoReader::new(&buf);
            assert_eq!(r.read_varint().unwrap(), v);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ProtoWriter::new();
        w.uint64(1, 150);
        w.string(2, "testing");
        w.bytes(3, &[1, 2, 3]);
        w.boolean(4, true);
        let buf = w.into_bytes();
        let mut r = ProtoReader::new(&buf);
        let f1 = r.next_field().unwrap().unwrap();
        assert_eq!((f1.number, f1.value), (1, 150));
        let f2 = r.next_field().unwrap().unwrap();
        assert_eq!((f2.number, f2.data), (2, &b"testing"[..]));
        let f3 = r.next_field().unwrap().unwrap();
        assert_eq!((f3.number, f3.data), (3, &[1u8, 2, 3][..]));
        let f4 = r.next_field().unwrap().unwrap();
        assert_eq!((f4.number, f4.value), (4, 1));
        assert!(r.next_field().unwrap().is_none());
    }

    #[test]
    fn zero_and_empty_fields_are_skipped() {
        let mut w = ProtoWriter::new();
        w.uint64(1, 0);
        w.bytes(2, b"");
        w.boolean(3, false);
        assert!(w.is_empty());
    }

    #[test]
    fn nested_messages() {
        let mut w = ProtoWriter::new();
        w.message(1, |inner| {
            inner.uint64(1, 7);
            inner.message(2, |inner2| inner2.string(1, "deep"));
        });
        let buf = w.into_bytes();
        let mut r = ProtoReader::new(&buf);
        let outer = r.next_field().unwrap().unwrap();
        assert_eq!(outer.number, 1);
        let mut r2 = ProtoReader::new(outer.data);
        let f = r2.next_field().unwrap().unwrap();
        assert_eq!(f.value, 7);
        let inner2 = r2.next_field().unwrap().unwrap();
        let mut r3 = ProtoReader::new(inner2.data);
        assert_eq!(r3.next_field().unwrap().unwrap().data, b"deep");
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = ProtoWriter::new();
        w.bytes(1, &[0u8; 100]);
        let buf = w.into_bytes();
        for cut in 1..buf.len() {
            let mut r = ProtoReader::new(&buf[..cut]);
            assert!(
                matches!(r.next_field(), Err(_) | Ok(None)),
                "cut={cut} should fail or end"
            );
        }
    }

    #[test]
    fn varint_overflow_detected() {
        let buf = [0xffu8; 11];
        let mut r = ProtoReader::new(&buf);
        assert_eq!(r.next_field().unwrap_err(), WireError::VarintOverflow);
    }

    #[test]
    fn bad_wire_type_detected() {
        // tag = field 1, wire type 3 (group start, unsupported)
        let buf = [0x0b];
        let mut r = ProtoReader::new(&buf);
        assert_eq!(r.next_field().unwrap_err(), WireError::BadWireType(3));
    }

    #[test]
    fn decode_meter_counts_fields() {
        let mut w = ProtoWriter::new();
        for i in 1..=10 {
            w.uint64(i, i as u64);
        }
        let buf = w.into_bytes();
        let meter = DecodeMeter::start();
        let mut r = ProtoReader::new(&buf);
        while r.next_field().unwrap().is_some() {}
        assert_eq!(meter.fields_decoded(), 10);
    }

    #[test]
    fn fixed_width_fields() {
        // Hand-encode fixed64 and fixed32 fields.
        let mut buf = Vec::new();
        put_varint(&mut buf, (1 << 3) | 1); // field 1, fixed64
        buf.extend_from_slice(&0xdead_beef_u64.to_le_bytes());
        put_varint(&mut buf, (2 << 3) | 5); // field 2, fixed32
        buf.extend_from_slice(&0xcafe_u32.to_le_bytes());
        let mut r = ProtoReader::new(&buf);
        assert_eq!(r.next_field().unwrap().unwrap().value, 0xdead_beef);
        assert_eq!(r.next_field().unwrap().unwrap().value, 0xcafe);
    }
}
