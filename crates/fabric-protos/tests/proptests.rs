//! Property-based tests for the protobuf wire format and Fabric
//! messages: arbitrary-value roundtrips and decoder robustness.

use fabric_protos::messages::*;
use fabric_protos::wire::{put_varint, varint_len, ProtoReader, ProtoWriter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        prop_assert_eq!(buf.len(), varint_len(v));
        let mut w = ProtoWriter::new();
        w.uint64(1, v);
        let bytes = w.into_bytes();
        if v != 0 {
            let mut r = ProtoReader::new(&bytes);
            let f = r.next_field().unwrap().unwrap();
            prop_assert_eq!(f.value, v);
        }
    }

    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = ProtoReader::new(&bytes);
        // Drain until end or error; must never panic.
        while let Ok(Some(_)) = r.next_field() {}
    }

    #[test]
    fn envelope_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256),
                          signature in proptest::collection::vec(any::<u8>(), 0..96)) {
        let e = Envelope { payload, signature };
        prop_assert_eq!(Envelope::unmarshal(&e.marshal()).unwrap(), e);
    }

    #[test]
    fn channel_header_roundtrip(
        header_type in 0u64..10,
        version in 0u64..5,
        timestamp in any::<u32>(),
        channel in "[a-z]{0,16}",
        tx_id in "[0-9a-f]{0,64}",
    ) {
        let ch = ChannelHeader {
            header_type,
            version,
            timestamp: timestamp as u64,
            channel_id: channel,
            tx_id,
            epoch: 0,
        };
        prop_assert_eq!(ChannelHeader::unmarshal(&ch.marshal()).unwrap(), ch);
    }

    #[test]
    fn kv_rwset_roundtrip(
        reads in proptest::collection::vec(("[a-z0-9_]{1,24}", proptest::option::of((any::<u32>(), any::<u16>()))), 0..8),
        writes in proptest::collection::vec(("[a-z0-9_]{1,24}", proptest::collection::vec(any::<u8>(), 0..32)), 0..8),
    ) {
        let rw = KvRwSet {
            reads: reads
                .into_iter()
                .map(|(key, v)| KvRead {
                    key,
                    version: v.map(|(b, t)| Version { block_num: b as u64, tx_num: t as u64 }),
                })
                .collect(),
            writes: writes
                .into_iter()
                .map(|(key, value)| KvWrite { key, is_delete: false, value })
                .collect(),
        };
        prop_assert_eq!(KvRwSet::unmarshal(&rw.marshal()).unwrap(), rw);
    }

    #[test]
    fn block_roundtrip(
        number in any::<u32>(),
        envelopes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 0..6),
    ) {
        let block = Block {
            header: BlockHeader {
                number: number as u64,
                previous_hash: vec![1; 32],
                data_hash: vec![2; 32],
            },
            data: BlockData { data: envelopes },
            metadata: BlockMetadata::default(),
        };
        prop_assert_eq!(Block::unmarshal(&block.marshal()).unwrap(), block);
    }

    #[test]
    fn unmarshal_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Envelope::unmarshal(&bytes);
        let _ = Block::unmarshal(&bytes);
        let _ = Transaction::unmarshal(&bytes);
        let _ = KvRwSet::unmarshal(&bytes);
        let _ = ChannelHeader::unmarshal(&bytes);
        let _ = fabric_protos::txflow::decode_transaction(&bytes);
        let _ = fabric_protos::txflow::decode_block(&bytes);
    }
}
