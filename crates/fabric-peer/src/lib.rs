//! The software-only Fabric validator peer (the paper's baseline).
//!
//! Two complementary implementations of the same validation semantics:
//!
//! * [`pipeline`] — the *functional* peer: real ECDSA/SHA-256, real
//!   protobuf unmarshaling, a bounded vscc worker pool, sequential MVCC
//!   and commit against a real state database and ledger. Used for
//!   correctness (including the software-vs-hardware equivalence check
//!   of §4.1) and for wall-clock microbenchmarks.
//! * [`model`] — the *calibrated performance model*: reproduces the
//!   paper's latency breakdowns and throughput curves (Figures 3, 10,
//!   11, 12, 13) at paper scale using the constants in [`costs`],
//!   exactly as the paper itself used a validated simulator for
//!   configurations beyond its hardware (§4.1).
//!
//! Both implement Fabric v1.4 semantics, bottleneck-for-bottleneck: the
//! peer verifies *all* endorsements regardless of policy, evaluates
//! policy sub-expressions sequentially, and — in the baseline
//! `validate_and_commit` path — never overlaps consecutive blocks.
//!
//! The [`stream`] module lifts that last restriction: it reproduces the
//! Blockchain Machine's *pipelined* block processor (verification of
//! block N+1 overlapping MVCC/commit of block N) while provably
//! preserving the serial path's results; see `crates/fabric-peer/README.md`.

#![warn(missing_docs)]

pub mod costs;
pub mod model;
pub mod pipeline;
pub mod sigcache;
pub mod stream;

pub use costs::SwCosts;
pub use fabric_ledger::TxValidationCode;
pub use model::{BlockProfile, CpuProfile, SwBreakdown, SwValidatorModel};
pub use pipeline::{BlockValidationResult, StageTimings, ValidateError, ValidatorPipeline};
pub use sigcache::{Claim, ClaimGuard, SigCacheKey, SigCacheStats, SignatureCache};
pub use stream::{StreamConfig, StreamError, StreamReport, StreamStats, StreamValidator};
