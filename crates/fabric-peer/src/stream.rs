//! Multi-block streaming validator: the paper's pipelined block
//! processor in software.
//!
//! The Blockchain Machine's protocol processor hands block N+1 to the
//! signature engines while block N is still in MVCC/commit (Figure 2b),
//! so the accelerator sustains a block *stream* instead of one block at
//! a time. [`StreamValidator`] reproduces that stage overlap on top of
//! the functional [`ValidatorPipeline`]:
//!
//! * **verify lanes** — a small pool of OS threads runs the signature
//!   half of validation ([`ValidatorPipeline::verify_stage`]: unmarshal,
//!   orderer check, parallel verify/vscc) for several blocks
//!   concurrently. Signature verification is state-independent, so this
//!   is safe at any depth.
//! * **commit sequencer** — a single thread drains verified blocks in
//!   strict block-number order and runs the order-sensitive half
//!   ([`ValidatorPipeline::commit_stage`]: MVCC, state DB commit, ledger
//!   append). Because MVCC for block N+1 only ever runs *after* block
//!   N's writes are applied, the stream observes exactly the state a
//!   serial `validate_and_commit` replay would — the serial-equivalence
//!   harness in `tests/tests/stream_equivalence.rs` proves this
//!   bit-for-bit (validation flags, commit hashes, final state) on
//!   randomized multi-block streams.
//! * **reorder buffer** — blocks may be pushed in any arrival order
//!   (UDP reassembly in `bmac-protocol` completes blocks out of order);
//!   they are buffered by header number and dispatched consecutively
//!   starting from the ledger's next expected block.
//!
//! Backpressure: verify lanes never run more than
//! [`StreamConfig::max_in_flight`] blocks ahead of the sequencer, so the
//! *verified* queue (decoded blocks, the expensive representation) stays
//! bounded under a slow commit stage. The reorder buffer of raw pushed
//! blocks is deliberately NOT bounded — `push` never blocks, because a
//! single-threaded feeder delivering blocks out of order must be able to
//! push the missing block the window is waiting on. Callers ingesting
//! from an untrusted or unbounded source should throttle on their side.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use std::time::Instant;

use fabric_protos::messages::Block;

use crate::pipeline::{BlockValidationResult, ValidateError, ValidatorPipeline, VerifiedBlock};

/// Streaming configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Number of concurrent verify lanes (blocks in the signature stage
    /// at once). Each lane additionally fans its block's signatures over
    /// the pipeline's vscc worker pool.
    pub verify_lanes: usize,
    /// Maximum blocks dispatched to verification but not yet committed.
    /// Bounds the verified-block queue; must be ≥ `verify_lanes` to keep
    /// every lane busy.
    pub max_in_flight: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            verify_lanes: 2,
            max_in_flight: 4,
        }
    }
}

/// Errors from the streaming validator.
#[derive(Debug)]
pub enum StreamError {
    /// A block failed structural decode or ledger append (same cases as
    /// [`ValidateError`]); blocks before it committed, later ones were
    /// discarded.
    Validate(ValidateError),
    /// A block number at or below the already-dispatched horizon was
    /// pushed again.
    DuplicateBlock(u64),
    /// The stream was closed while a gap remained in the sequence: block
    /// `expected` never arrived but `buffered` (a later number) did.
    Gap {
        /// The missing block number.
        expected: u64,
        /// The smallest buffered number above the gap.
        buffered: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Validate(e) => write!(f, "stream validation failed: {e}"),
            StreamError::DuplicateBlock(n) => write!(f, "block {n} pushed twice"),
            StreamError::Gap { expected, buffered } => {
                write!(
                    f,
                    "stream closed with a gap: block {expected} missing, {buffered} buffered"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Aggregate statistics of one stream run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Blocks committed.
    pub blocks: usize,
    /// Transactions across all committed blocks.
    pub txs: usize,
    /// Wall-clock from first push to last commit (µs).
    pub makespan_us: u64,
    /// Total time spent inside the verify stage, summed across lanes.
    pub verify_busy_us: u64,
    /// Total time spent inside the commit stage (single sequencer).
    pub commit_busy_us: u64,
    /// Configured verify lanes.
    pub verify_lanes: usize,
    /// Verify-stage occupancy: busy time over `lanes × makespan`.
    pub verify_occupancy: f64,
    /// Commit-stage (sequencer) occupancy: busy time over makespan.
    pub commit_occupancy: f64,
    /// Sum of per-block stage totals (incl. ledger) *as measured inside
    /// this concurrent run*. On hosts with fewer cores than lanes,
    /// preemption inflates per-block stage times, so this is NOT the
    /// cost of an independent serial replay — benchmark one separately
    /// (as `bench_validation` does in `serial_wall_us`) for a wall-clock
    /// comparison.
    pub serial_sum_us: u64,
    /// `serial_sum / makespan`: how much measured stage time the
    /// pipeline packed into each wall-clock second, i.e. the degree of
    /// stage *concurrency*. > 1 means stages ran overlapped; it does not
    /// by itself prove a wall-clock win on an oversubscribed host (see
    /// [`StreamStats::serial_sum_us`]).
    pub overlap_factor: f64,
    /// Most blocks simultaneously dispatched-but-uncommitted.
    pub max_in_flight_observed: usize,
    /// Blocks that arrived ahead of sequence and waited in the reorder
    /// buffer.
    pub reordered_blocks: usize,
}

/// Result of a completed stream: per-block results in block order plus
/// the aggregate stats.
#[derive(Debug)]
pub struct StreamReport {
    /// One result per committed block, ordered by block number.
    pub results: Vec<BlockValidationResult>,
    /// Aggregate throughput/occupancy statistics.
    pub stats: StreamStats,
}

impl StreamReport {
    /// Committed blocks per second over the stream makespan.
    pub fn blocks_per_sec(&self) -> f64 {
        rate(self.stats.blocks as u64, self.stats.makespan_us)
    }

    /// Committed transactions per second over the stream makespan.
    pub fn tps(&self) -> f64 {
        rate(self.stats.txs as u64, self.stats.makespan_us)
    }
}

fn rate(count: u64, makespan_us: u64) -> f64 {
    if makespan_us == 0 {
        return 0.0;
    }
    count as f64 * 1e6 / makespan_us as f64
}

#[derive(Debug, Default)]
struct StreamState {
    /// Reorder buffer: pushed blocks not yet handed to a verify lane.
    pending: BTreeMap<u64, Block>,
    /// Verified blocks awaiting the sequencer, keyed by number.
    verified: HashMap<u64, (Block, VerifiedBlock)>,
    /// Next block number a lane may claim.
    next_dispatch: u64,
    /// Next block number the sequencer will commit.
    next_commit: u64,
    /// No further pushes will arrive.
    closed: bool,
    /// Lowest-numbered failure; poisons the stream. The sequencer still
    /// commits every verified block *below* [`StreamState::error_at`]
    /// first, so the ledger stops exactly where a serial replay would.
    error: Option<StreamError>,
    /// Block number of `error` (`u64::MAX` while error-free).
    error_at: u64,
    /// Hard abort (session dropped): all threads exit immediately, even
    /// with blocks still in flight.
    aborted: bool,
    /// In-order committed results.
    results: Vec<BlockValidationResult>,
    /// Wall-clock of the first push (stream start).
    started: Option<Instant>,
    /// Wall-clock of the most recent commit (stream end).
    last_commit: Option<Instant>,
    /// Busy-time accounting (µs).
    verify_busy_us: u64,
    commit_busy_us: u64,
    max_in_flight: usize,
    reordered: usize,
}

struct Shared {
    pipeline: Arc<ValidatorPipeline>,
    state: Mutex<StreamState>,
    cv: Condvar,
    window: usize,
}

/// The stream-pipelined validator. See the module docs for the stage
/// layout and ordering guarantees.
pub struct StreamValidator {
    shared: Arc<Shared>,
    lanes: Vec<std::thread::JoinHandle<()>>,
    sequencer: Option<std::thread::JoinHandle<()>>,
    config: StreamConfig,
}

impl std::fmt::Debug for StreamValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamValidator")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl StreamValidator {
    /// Starts a streaming session over `pipeline`. The stream begins at
    /// the ledger's next expected block number, so it can extend an
    /// existing chain.
    ///
    /// # Panics
    ///
    /// Panics if `config.verify_lanes == 0` or
    /// `config.max_in_flight < config.verify_lanes`.
    pub fn new(pipeline: Arc<ValidatorPipeline>, config: StreamConfig) -> Self {
        assert!(config.verify_lanes > 0, "at least one verify lane");
        assert!(
            config.max_in_flight >= config.verify_lanes,
            "in-flight window smaller than the lane count would idle lanes"
        );
        let base = pipeline.ledger().next_block_number();
        let shared = Arc::new(Shared {
            pipeline,
            state: Mutex::named(
                "peer.stream.state",
                StreamState {
                    next_dispatch: base,
                    next_commit: base,
                    error_at: u64::MAX,
                    ..StreamState::default()
                },
            ),
            cv: Condvar::new(),
            window: config.max_in_flight,
        });
        let lanes = (0..config.verify_lanes)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stream-verify-{i}"))
                    .spawn(move || verify_lane(&shared))
                    .expect("spawn verify lane")
            })
            .collect();
        let sequencer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("stream-commit".into())
                .spawn(move || commit_sequencer(&shared))
                .expect("spawn commit sequencer")
        };
        StreamValidator {
            shared,
            lanes,
            sequencer: Some(sequencer),
            config,
        }
    }

    /// Feeds one block into the stream. Blocks may arrive in any order;
    /// they are dispatched to verification in block-number order. Never
    /// blocks the caller (backpressure is applied between the verify and
    /// commit stages, not at ingestion).
    ///
    /// # Errors
    ///
    /// [`StreamError::DuplicateBlock`] when this number was already
    /// pushed or dispatched. Validation failures surface from
    /// [`StreamValidator::finish`], not here.
    pub fn push(&self, block: Block) -> Result<(), StreamError> {
        let number = block.header.number;
        let mut st = self.shared.state.lock();
        st.started.get_or_insert_with(Instant::now);
        if number < st.next_dispatch || st.pending.contains_key(&number) {
            return Err(StreamError::DuplicateBlock(number));
        }
        if number > st.next_dispatch {
            st.reordered += 1;
        }
        st.pending.insert(number, block);
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Closes the stream, waits for every pushed block to commit, and
    /// returns the per-block results and stream statistics.
    ///
    /// On failure, every verified block *numbered below* the failing one
    /// is still committed first (exactly the prefix a serial replay
    /// would commit) before the error is returned.
    ///
    /// # Errors
    ///
    /// Any [`StreamError`] raised during the run: decode/ledger failures,
    /// or a sequence gap at close.
    pub fn finish(mut self) -> Result<StreamReport, StreamError> {
        {
            let mut st = self.shared.state.lock();
            st.closed = true;
            self.shared.cv.notify_all();
        }
        for lane in self.lanes.drain(..) {
            lane.join().expect("verify lane panicked");
        }
        self.sequencer
            .take()
            .expect("finish called once")
            .join()
            .expect("commit sequencer panicked");
        // Durable mode: every committed block (the whole stream, or the
        // serial prefix below a failure) is flushed through the state
        // journal and block store before the session reports back — the
        // stream's group-commit boundary.
        let flushed = self.shared.pipeline.flush_storage();
        let mut st = self.shared.state.lock();
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        flushed.map_err(StreamError::Validate)?;
        let results = std::mem::take(&mut st.results);
        let serial_sum_us: u64 = results
            .iter()
            .map(|r| r.timings.total_excl_ledger_us() + r.timings.ledger_us)
            .sum();
        // First push to last commit: caller think-time between the last
        // commit and this `finish` call must not count as stream time.
        let makespan_us = match (st.started, st.last_commit) {
            (Some(start), Some(end)) => end.duration_since(start).as_micros() as u64,
            _ => 0,
        };
        let lanes = self.config.verify_lanes;
        let stats = StreamStats {
            blocks: results.len(),
            txs: results.iter().map(|r| r.codes.len()).sum(),
            makespan_us,
            verify_busy_us: st.verify_busy_us,
            commit_busy_us: st.commit_busy_us,
            verify_lanes: lanes,
            verify_occupancy: occupancy(st.verify_busy_us, makespan_us, lanes),
            commit_occupancy: occupancy(st.commit_busy_us, makespan_us, 1),
            serial_sum_us,
            overlap_factor: if makespan_us == 0 {
                0.0
            } else {
                serial_sum_us as f64 / makespan_us as f64
            },
            max_in_flight_observed: st.max_in_flight,
            reordered_blocks: st.reordered,
        };
        Ok(StreamReport { results, stats })
    }

    /// Aborts the session mid-flight, simulating a crash: pending blocks
    /// are discarded, in-progress stage work is allowed to finish (the
    /// threads are joined), and — unlike [`StreamValidator::finish`] —
    /// storage is deliberately **not** flushed. In durable mode the
    /// on-disk tail is whatever the group-commit boundaries already made
    /// durable: possibly *torn* (the state journal and the block store
    /// flushed at independent boundaries), but always recoverable —
    /// `fabric_store::FabricStore::open` reconciles the two files to the
    /// longest serial prefix both cover. Returns the number of blocks
    /// the sequencer committed (to the storage buffers) before the
    /// abort.
    ///
    /// Dropping an unfinished session has the same storage semantics;
    /// `abort` just makes the intent explicit and reports the committed
    /// count.
    pub fn abort(mut self) -> usize {
        self.shutdown();
        let st = self.shared.state.lock();
        st.results.len()
    }

    /// Shared teardown of `abort` and `Drop`: wake every thread with the
    /// abort flag and join them. Idempotent.
    fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.closed = true;
            st.aborted = true;
            st.pending.clear();
            self.shared.cv.notify_all();
        }
        for lane in self.lanes.drain(..) {
            let _ = lane.join();
        }
        if let Some(seq) = self.sequencer.take() {
            let _ = seq.join();
        }
    }

    /// Convenience: stream `blocks` (in the given arrival order) through
    /// a fresh session and wait for completion.
    ///
    /// # Errors
    ///
    /// Any [`StreamError`] from pushing or from the run itself.
    pub fn run(
        pipeline: Arc<ValidatorPipeline>,
        config: StreamConfig,
        blocks: impl IntoIterator<Item = Block>,
    ) -> Result<StreamReport, StreamError> {
        let stream = StreamValidator::new(pipeline, config);
        for block in blocks {
            stream.push(block)?;
        }
        stream.finish()
    }
}

impl Drop for StreamValidator {
    fn drop(&mut self) {
        // A dropped (un-finished) session must not leave threads parked —
        // including the unwind path where `finish` panicked on a dead
        // lane, which would otherwise leave the sequencer waiting for a
        // claimed-but-never-verified block forever. Storage is NOT
        // flushed here (see `abort`): a dropped session is a crash, and
        // the store tail is left torn-but-recoverable by design.
        self.shutdown();
    }
}

/// One verify lane: claim the lowest undispatched block (respecting the
/// in-flight window), run the signature stage outside the lock, publish
/// the verified block for the sequencer.
fn verify_lane(shared: &Shared) {
    loop {
        let (number, block) = {
            let mut st = shared.state.lock();
            loop {
                if st.aborted || st.error.is_some() {
                    // On a validation error every block below it is
                    // already claimed (dispatch is in numeric order), so
                    // idle lanes have nothing left to contribute.
                    return;
                }
                let within_window = (st.next_dispatch - st.next_commit) < shared.window as u64;
                if within_window {
                    let next = st.next_dispatch;
                    if let Some(block) = st.pending.remove(&next) {
                        st.next_dispatch += 1;
                        let in_flight = (st.next_dispatch - st.next_commit) as usize;
                        st.max_in_flight = st.max_in_flight.max(in_flight);
                        break (next, block);
                    }
                    if st.closed {
                        match st.pending.keys().next().copied() {
                            // Closed with a hole in the sequence: blocks
                            // above the gap can never commit. Fail loudly.
                            Some(buffered) => {
                                set_error(
                                    &mut st,
                                    next,
                                    StreamError::Gap {
                                        expected: next,
                                        buffered,
                                    },
                                );
                                shared.cv.notify_all();
                                return;
                            }
                            None => return,
                        }
                    }
                }
                st = shared.cv.wait(st);
            }
        };

        let t0 = Instant::now();
        let outcome = shared.pipeline.verify_stage(&block);
        let busy = t0.elapsed().as_micros() as u64;

        let mut st = shared.state.lock();
        st.verify_busy_us += busy;
        match outcome {
            Ok(verified) => {
                st.verified.insert(number, (block, verified));
            }
            Err(e) => {
                set_error(&mut st, number, StreamError::Validate(e));
            }
        }
        shared.cv.notify_all();
    }
}

/// Records a failure, keeping the LOWEST-numbered one: that is the block
/// where a serial replay would stop, and the sequencer commits exactly
/// the verified prefix below it.
fn set_error(st: &mut StreamState, number: u64, error: StreamError) {
    if number < st.error_at {
        st.error = Some(error);
        st.error_at = number;
    }
}

/// The commit sequencer: drain verified blocks in strict number order
/// and run MVCC + commit, so block N+1 always observes block N's writes.
///
/// On a downstream failure at block E the sequencer keeps draining
/// until `next_commit` reaches E — every block below E was dispatched
/// before E (dispatch is in numeric order), so its verified result is
/// guaranteed to arrive — and only then exits. That makes the committed
/// prefix identical to a serial replay's, deterministically, no matter
/// which lane hit the error first.
fn commit_sequencer(shared: &Shared) {
    loop {
        let (number, block, verified) = {
            let mut st = shared.state.lock();
            loop {
                if st.aborted || st.next_commit >= st.error_at {
                    return;
                }
                let next = st.next_commit;
                if let Some((block, verified)) = st.verified.remove(&next) {
                    break (next, block, verified);
                }
                // Done when the input is closed and every dispatched
                // block has been committed.
                if st.error.is_none()
                    && st.closed
                    && st.pending.is_empty()
                    && st.verified.is_empty()
                    && st.next_commit == st.next_dispatch
                {
                    return;
                }
                st = shared.cv.wait(st);
            }
        };

        let t0 = Instant::now();
        let outcome = shared.pipeline.commit_stage(&block, verified);
        let busy = t0.elapsed().as_micros() as u64;

        let mut st = shared.state.lock();
        st.commit_busy_us += busy;
        match outcome {
            Ok(result) => {
                debug_assert_eq!(result.block_num, number);
                st.results.push(result);
                st.next_commit = number + 1;
                st.last_commit = Some(Instant::now());
            }
            Err(e) => {
                set_error(&mut st, number, StreamError::Validate(e));
                shared.cv.notify_all();
                return;
            }
        }
        shared.cv.notify_all();
    }
}

fn occupancy(busy_us: u64, makespan_us: u64, servers: usize) -> f64 {
    if makespan_us == 0 || servers == 0 {
        return 0.0;
    }
    busy_us as f64 / (makespan_us as f64 * servers as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    use fabric_crypto::identity::{Msp, Role};
    use fabric_ledger::TxValidationCode;
    use fabric_node::chaincode::KvChaincode;
    use fabric_node::network::{FabricNetwork, FabricNetworkBuilder};
    use fabric_policy::parse;

    fn make_network(block_size: usize) -> FabricNetwork {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(block_size)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        net
    }

    fn make_validator(workers: usize) -> ValidatorPipeline {
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), parse("2-outof-2 orgs").unwrap());
        ValidatorPipeline::new(msp, policies, workers)
    }

    /// `n` single-tx blocks all touching the SAME key. With
    /// `commit_back`, each block's writes are committed to the endorsers
    /// before the next endorsement, so every transaction reads the
    /// freshest version (valid chain of cross-block dependencies);
    /// without it, every block after the first is endorsed against stale
    /// state (cross-block MVCC conflicts).
    fn hot_key_blocks(n: usize, commit_back: bool) -> Vec<Block> {
        let mut net = make_network(1);
        let mut blocks = Vec::new();
        while blocks.len() < n {
            let cut = net
                .submit_invocation(
                    0,
                    "kv",
                    "put",
                    &["hot".into(), format!("v{}", blocks.len())],
                )
                .unwrap();
            for block in cut {
                if commit_back {
                    let decoded = fabric_protos::txflow::decode_block(&block.marshal()).unwrap();
                    let writes: Vec<fabric_node::endorser::TxWrites> = decoded
                        .txs
                        .iter()
                        .enumerate()
                        .map(|(i, tx)| (i as u64, tx.writes.clone()))
                        .collect();
                    net.commit_to_endorsers(decoded.number, &writes);
                }
                blocks.push(block);
            }
        }
        blocks
    }

    fn assert_equivalent(serial: &ValidatorPipeline, report: &StreamReport) {
        let stream_pipeline_results = &report.results;
        for r in stream_pipeline_results {
            let ledger = serial.ledger();
            let serial_block = ledger.block(r.block_num).expect("serial committed it");
            assert_eq!(
                r.commit_hash, serial_block.commit_hash,
                "block {}",
                r.block_num
            );
            assert_eq!(r.codes, serial_block.tx_filter, "block {}", r.block_num);
        }
    }

    #[test]
    fn stream_matches_serial_on_dependent_blocks() {
        // Every block writes the same key the next block reads: if the
        // stream ever ran MVCC for block N+1 before committing block N,
        // it would flag a phantom conflict.
        let blocks = hot_key_blocks(4, true);
        let serial = make_validator(2);
        for b in &blocks {
            let r = serial.validate_and_commit(b).unwrap();
            assert_eq!(r.valid_count(), 1, "serial block {} valid", r.block_num);
        }
        let pipeline = Arc::new(make_validator(2));
        let report = StreamValidator::run(
            Arc::clone(&pipeline),
            StreamConfig::default(),
            blocks.clone(),
        )
        .unwrap();
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert_eq!(r.valid_count(), 1, "stream block {} valid", r.block_num);
        }
        assert_equivalent(&serial, &report);
        assert_eq!(serial.state_db().snapshot(), pipeline.state_db().snapshot());
        assert_eq!(
            serial.ledger().tip_commit_hash(),
            pipeline.ledger().tip_commit_hash()
        );
    }

    #[test]
    fn stream_flags_cross_block_conflicts_like_serial() {
        // Stale endorsements: blocks 1.. read version None but block 0
        // committed the key — every later block must MVCC-conflict, in
        // both validators.
        let blocks = hot_key_blocks(3, false);
        let serial = make_validator(2);
        for b in &blocks {
            serial.validate_and_commit(b).unwrap();
        }
        let pipeline = Arc::new(make_validator(2));
        let report =
            StreamValidator::run(Arc::clone(&pipeline), StreamConfig::default(), blocks).unwrap();
        assert_eq!(report.results[0].codes, vec![TxValidationCode::Valid]);
        for r in &report.results[1..] {
            assert_eq!(r.codes, vec![TxValidationCode::MvccReadConflict]);
        }
        assert_equivalent(&serial, &report);
        assert_eq!(serial.state_db().snapshot(), pipeline.state_db().snapshot());
    }

    #[test]
    fn out_of_order_push_is_reordered() {
        let blocks = hot_key_blocks(4, true);
        let pipeline = Arc::new(make_validator(2));
        let stream = StreamValidator::new(Arc::clone(&pipeline), StreamConfig::default());
        for b in blocks.into_iter().rev() {
            stream.push(b).unwrap();
        }
        let report = stream.finish().unwrap();
        assert_eq!(report.results.len(), 4);
        let nums: Vec<u64> = report.results.iter().map(|r| r.block_num).collect();
        assert_eq!(nums, vec![0, 1, 2, 3], "commits in block order");
        assert!(report.stats.reordered_blocks >= 3);
        assert!(report.results.iter().all(|r| r.valid_count() == 1));
    }

    #[test]
    fn duplicate_push_is_rejected() {
        let blocks = hot_key_blocks(2, true);
        let pipeline = Arc::new(make_validator(1));
        let stream = StreamValidator::new(pipeline, StreamConfig::default());
        stream.push(blocks[0].clone()).unwrap();
        assert!(matches!(
            stream.push(blocks[0].clone()),
            Err(StreamError::DuplicateBlock(0))
        ));
        stream.push(blocks[1].clone()).unwrap();
        assert_eq!(stream.finish().unwrap().results.len(), 2);
    }

    #[test]
    fn gap_at_close_fails_loudly() {
        let blocks = hot_key_blocks(3, true);
        let pipeline = Arc::new(make_validator(1));
        let stream = StreamValidator::new(pipeline, StreamConfig::default());
        stream.push(blocks[0].clone()).unwrap();
        stream.push(blocks[2].clone()).unwrap(); // block 1 never arrives
        match stream.finish() {
            Err(StreamError::Gap { expected, buffered }) => {
                assert_eq!(expected, 1);
                assert_eq!(buffered, 2);
            }
            other => panic!("expected Gap error, got {other:?}"),
        }
    }

    #[test]
    fn stats_account_for_stages_and_in_flight() {
        let blocks = hot_key_blocks(4, true);
        let pipeline = Arc::new(make_validator(1));
        let report = StreamValidator::run(
            pipeline,
            StreamConfig {
                verify_lanes: 2,
                max_in_flight: 4,
            },
            blocks,
        )
        .unwrap();
        let s = &report.stats;
        assert_eq!(s.blocks, 4);
        assert_eq!(s.txs, 4);
        assert!(s.makespan_us > 0);
        assert!(s.verify_busy_us > 0, "verification does real ECDSA");
        assert!(s.commit_busy_us > 0);
        assert!(s.max_in_flight_observed >= 1);
        assert!(s.max_in_flight_observed <= 4);
        assert!(report.blocks_per_sec() > 0.0);
        assert!(report.tps() > 0.0);
        // serial_sum is the sum of the per-block stage timings the
        // stream actually measured.
        let expect: u64 = report
            .results
            .iter()
            .map(|r| r.timings.total_excl_ledger_us() + r.timings.ledger_us)
            .sum();
        assert_eq!(s.serial_sum_us, expect);
    }

    #[test]
    fn error_mid_stream_still_commits_the_serial_prefix() {
        // Block 1 is made structurally undecodable. A serial replay
        // commits block 0, then fails on block 1; the stream must land
        // in the identical state even when a verify lane discovers the
        // bad block while block 0 is still uncommitted.
        let mut blocks = hot_key_blocks(3, true);
        blocks[1].data.data[0] = vec![0xFF, 0xEE, 0xDD];

        let serial = make_validator(2);
        serial.validate_and_commit(&blocks[0]).unwrap();
        assert!(matches!(
            serial.validate_and_commit(&blocks[1]),
            Err(ValidateError::Decode(_))
        ));

        let pipeline = Arc::new(make_validator(2));
        let stream = StreamValidator::new(
            Arc::clone(&pipeline),
            StreamConfig {
                verify_lanes: 3,
                max_in_flight: 3,
            },
        );
        for b in &blocks {
            stream.push(b.clone()).unwrap();
        }
        match stream.finish() {
            Err(StreamError::Validate(ValidateError::Decode(_))) => {}
            other => panic!("expected decode failure, got {other:?}"),
        }
        // The prefix below the failure committed, deterministically.
        assert_eq!(pipeline.ledger().height(), 1);
        assert_eq!(serial.ledger().height(), 1);
        assert_eq!(
            serial.ledger().tip_commit_hash(),
            pipeline.ledger().tip_commit_hash()
        );
        assert_eq!(serial.state_db().snapshot(), pipeline.state_db().snapshot());
    }

    #[test]
    fn makespan_excludes_caller_think_time() {
        let blocks = hot_key_blocks(2, true);
        let pipeline = Arc::new(make_validator(1));
        let stream = StreamValidator::new(pipeline, StreamConfig::default());
        for b in blocks {
            stream.push(b).unwrap();
        }
        // Give the pipeline ample time to drain, then idle well past it:
        // makespan is first-push→last-commit, not first-push→finish.
        std::thread::sleep(std::time::Duration::from_millis(400));
        let report = stream.finish().unwrap();
        assert_eq!(report.results.len(), 2);
        assert!(
            report.stats.makespan_us < 300_000,
            "caller idle time leaked into makespan: {} µs",
            report.stats.makespan_us
        );
    }

    #[test]
    fn dropped_unfinished_stream_does_not_hang() {
        let blocks = hot_key_blocks(2, true);
        let pipeline = Arc::new(make_validator(1));
        let stream = StreamValidator::new(pipeline, StreamConfig::default());
        stream.push(blocks[0].clone()).unwrap();
        drop(stream); // must join its threads, not deadlock
    }
}
