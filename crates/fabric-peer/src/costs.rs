//! Calibrated cost constants for the software validator model.
//!
//! The paper's environment (Fabric v1.4 in Go on 2.2 GHz Xeon vCPUs) is
//! reproduced as a cost model. Every constant below is derived from
//! numbers the paper itself reports; the derivations are spelled out so
//! the calibration is auditable, and `tests/calibration.rs` in the bench
//! crate checks the resulting figure shapes against the paper.
//!
//! Derivations (paper references):
//!
//! * **ECDSA verify + hash ≈ 190 µs/verification.** Figure 12a: with 8
//!   vCPUs and 150-tx blocks, "evaluation of one more endorsement takes
//!   about 5 ms" per block → `150/8 × t_v ≈ 3.5–5 ms` → `t_v ≈
//!   190–260 µs`. Jointly fit with Figure 11's weak scaling (3,900 →
//!   5,600 tps from 4 → 16 vCPUs at block 250), which requires a serial
//!   per-transaction overhead, yielding `t_v = 190 µs` split 150 µs
//!   ECDSA + 40 µs SHA-256 (matching Figure 3a's ~40%/~10% profile
//!   shares).
//! * **Serial vscc overhead ≈ 70 µs/tx.** The residual that reproduces
//!   the paper's 1.5× throughput scaling from 4 to 16 vCPUs (Amdahl
//!   fraction of the Go validator loop: dispatch, per-tx unmarshal
//!   inside vscc, policy machinery). Also consistent with Figure 12a's
//!   "fixed cost of policy evaluation is quite high (∼13 ms)" per
//!   150-tx block.
//! * **Unmarshal ≈ 36 µs/tx + 3 µs/KB.** Figure 10: block data parse
//!   and retrieval improved "∼40× to less than 0.2 ms" for a 200-tx
//!   block → software unmarshal ≈ 8 ms ≈ 40 µs/tx; "unmarshaling
//!   accounts for ∼17% of validation latency".
//! * **State DB read 8 µs / write 10 µs.** Keeps statedb at 10–20% of
//!   validation latency (Figure 3b) for smallbank's 2-read/2-write
//!   transactions.
//! * **Ledger commit 3 ms + 10 µs/KB.** Figure 3b: ledger commit is
//!   I/O-bound, takes longer than state DB access, grows with block
//!   size; excluded from throughput metrics like the paper (§4.2).
//! * **Policy sub-expression visit ≈ 85 µs.** Figure 12b: the complex
//!   OR-of-ANDs policy drops the software peer to ~2,700 tps because
//!   "Fabric implementation evaluates all sub-expressions of a policy
//!   sequentially"; 85 µs per extra visit reproduces that drop.

use fabric_sim::{SimTime, MICROS, MILLIS};

/// Cost constants for the software validator peer.
#[derive(Debug, Clone, Copy)]
pub struct SwCosts {
    /// ECDSA P-256 verification on one vCPU.
    pub ecdsa_verify: SimTime,
    /// SHA-256 + data marshaling feeding one verification.
    pub hash_per_verify: SimTime,
    /// Serial per-transaction validator overhead (not parallelized).
    pub vscc_overhead_per_tx: SimTime,
    /// Per-transaction unmarshal cost (fixed part).
    pub unmarshal_per_tx: SimTime,
    /// Per-KB unmarshal cost.
    pub unmarshal_per_kb: SimTime,
    /// One state DB read.
    pub statedb_read: SimTime,
    /// One state DB write.
    pub statedb_write: SimTime,
    /// MVCC version comparison per transaction.
    pub mvcc_compare_per_tx: SimTime,
    /// Fixed ledger-commit cost per block.
    pub ledger_commit_fixed: SimTime,
    /// Ledger-commit cost per KB of block.
    pub ledger_commit_per_kb: SimTime,
    /// Extra cost per policy sub-expression visit beyond the native
    /// k-of-n path.
    pub policy_visit: SimTime,
    /// Per-block fixed cost of receiving + scheduling (gossip handoff).
    pub block_fixed: SimTime,
    /// One sharded-LRU signature-cache probe (hash of the
    /// key‖digest‖signature triple plus a locked map lookup). Only the
    /// cache-aware model variants use this; the calibrated baseline
    /// matches the paper's cacheless Fabric v1.4.
    pub sig_cache_lookup: SimTime,
}

impl Default for SwCosts {
    fn default() -> Self {
        SwCosts {
            ecdsa_verify: 150 * MICROS,
            hash_per_verify: 40 * MICROS,
            vscc_overhead_per_tx: 70 * MICROS,
            unmarshal_per_tx: 36 * MICROS,
            unmarshal_per_kb: 3 * MICROS,
            statedb_read: 8 * MICROS,
            statedb_write: 10 * MICROS,
            mvcc_compare_per_tx: 2 * MICROS,
            ledger_commit_fixed: 3 * MILLIS,
            ledger_commit_per_kb: 10 * MICROS,
            policy_visit: 85 * MICROS,
            block_fixed: 100 * MICROS,
            sig_cache_lookup: 2 * MICROS,
        }
    }
}

impl SwCosts {
    /// Cost of one signature verification (ECDSA + hashing).
    pub fn verify(&self) -> SimTime {
        self.ecdsa_verify + self.hash_per_verify
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documented_derivations() {
        let c = SwCosts::default();
        assert_eq!(c.verify(), 190 * MICROS);
        // Marginal endorsement cost per 150-tx block at 8 vCPUs lands in
        // the paper's "about 5 ms" neighbourhood.
        let marginal = 150 * c.verify() / 8;
        assert!((3_000..6_000).contains(&(marginal / MICROS)), "{marginal}");
        // Unmarshal for a 200-tx block ≈ 8 ms (Figure 10), assuming
        // ~3.5 KB/tx envelopes.
        let unm = 200 * c.unmarshal_per_tx + 700 * c.unmarshal_per_kb;
        assert!((7_000..10_000).contains(&(unm / MICROS)), "{unm}");
    }
}
