//! The functional validation pipeline of a software-only validator peer.
//!
//! Implements the five steps of Figure 2a with real cryptography:
//!
//! 1. retrieve block data and verify the orderer's signature;
//! 2. verify each transaction (client signature) and run vscc
//!    (endorsement signatures + endorsement policy) — parallelized over a
//!    worker pool like Fabric's validator goroutines, and verifying *all*
//!    endorsements regardless of the policy, as Fabric does (§4.3);
//! 3. MVCC: sequentially re-read each valid transaction's read set from
//!    the state database and compare versions;
//! 4. commit: apply valid write sets to the state database and append the
//!    block to the ledger with the validation flags and commit hash;
//! 5. miscellaneous: history database updates.
//!
//! Wall-clock time spent in each stage is recorded so tests and examples
//! can reproduce the bottleneck analysis of Figure 3 on real hardware.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fabric_crypto::identity::NodeId;
use fabric_crypto::Msp;
use fabric_ledger::{Ledger, LedgerError, TxValidationCode};
use fabric_policy::Policy;
use fabric_protos::txflow::{decode_block_struct, DecodedBlock, DecodedTransaction};
use fabric_protos::messages::Block;
use fabric_statedb::{Height, StateDb, WriteBatch};

/// Per-stage wall-clock timings of one block validation (µs).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Unmarshaling / data retrieval.
    pub unmarshal_us: u64,
    /// Orderer signature check.
    pub block_verify_us: u64,
    /// Parallel verify + vscc.
    pub verify_vscc_us: u64,
    /// Sequential MVCC.
    pub mvcc_us: u64,
    /// State DB commit.
    pub statedb_commit_us: u64,
    /// Ledger commit.
    pub ledger_us: u64,
}

impl StageTimings {
    /// Total validation time excluding ledger commit (the paper's metric
    /// basis, §4.2).
    pub fn total_excl_ledger_us(&self) -> u64 {
        self.unmarshal_us + self.block_verify_us + self.verify_vscc_us + self.mvcc_us
            + self.statedb_commit_us
    }
}

/// Result of validating and committing one block.
#[derive(Debug)]
pub struct BlockValidationResult {
    /// Block number.
    pub block_num: u64,
    /// Whether the block-level (orderer) signature verified.
    pub block_valid: bool,
    /// Per-transaction validation codes, in order.
    pub codes: Vec<TxValidationCode>,
    /// Transaction ids, in order.
    pub tx_ids: Vec<String>,
    /// Commit hash after this block.
    pub commit_hash: [u8; 32],
    /// Wall-clock stage timings.
    pub timings: StageTimings,
}

impl BlockValidationResult {
    /// Number of valid transactions.
    pub fn valid_count(&self) -> usize {
        self.codes.iter().filter(|c| c.is_valid()).count()
    }
}

/// Errors from block validation.
#[derive(Debug)]
pub enum ValidateError {
    /// The block could not be decoded at all.
    Decode(fabric_protos::wire::WireError),
    /// Ledger append failed (ordering/duplicate/chain problems).
    Ledger(LedgerError),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::Decode(e) => write!(f, "block decode failed: {e}"),
            ValidateError::Ledger(e) => write!(f, "ledger commit failed: {e}"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// The software validator peer.
///
/// Owns a state database and ledger; configured with the chaincode
/// endorsement policies and the MSP trust anchors, plus the number of
/// parallel vscc workers (the paper's "vscc threads" = vCPUs, §4.1).
#[derive(Debug)]
pub struct ValidatorPipeline {
    msp: Msp,
    policies: HashMap<String, Policy>,
    state_db: StateDb,
    ledger: Ledger,
    workers: usize,
    /// Count of signature verifications performed (for Figure 12a's
    /// "Fabric verifies all endorsements" evidence).
    verifications: AtomicUsize,
}

impl ValidatorPipeline {
    /// Creates a validator with `workers` parallel vscc workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(msp: Msp, policies: HashMap<String, Policy>, workers: usize) -> Self {
        assert!(workers > 0, "at least one vscc worker required");
        ValidatorPipeline {
            msp,
            policies,
            state_db: StateDb::new(),
            ledger: Ledger::new(),
            workers,
            verifications: AtomicUsize::new(0),
        }
    }

    /// The peer's state database handle.
    pub fn state_db(&self) -> StateDb {
        self.state_db.clone()
    }

    /// The peer's ledger handle.
    pub fn ledger(&self) -> Ledger {
        self.ledger.clone()
    }

    /// Total ECDSA verifications performed so far.
    pub fn verifications(&self) -> usize {
        self.verifications.load(Ordering::Relaxed)
    }

    /// Number of vscc workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Validates and commits one block (steps 1–5 of Figure 2a).
    ///
    /// # Errors
    ///
    /// [`ValidateError::Decode`] when the block structure itself is
    /// unparsable (individual bad transactions are *flagged*, not
    /// errors), or [`ValidateError::Ledger`] when the append fails.
    pub fn validate_and_commit(
        &self,
        block: &Block,
    ) -> Result<BlockValidationResult, ValidateError> {
        let mut timings = StageTimings::default();

        // Step 1a: retrieve block and transaction data (unmarshal).
        let t0 = Instant::now();
        let block_len = block.marshal().len();
        let decoded = decode_block_struct(block, block_len).map_err(ValidateError::Decode)?;
        timings.unmarshal_us = t0.elapsed().as_micros() as u64;

        // Step 1b: verify the orderer signature.
        let t0 = Instant::now();
        let block_valid = self.verify_orderer(&decoded);
        timings.block_verify_us = t0.elapsed().as_micros() as u64;

        // Step 2: parallel verification + vscc.
        let t0 = Instant::now();
        let mut codes = self.verify_vscc_parallel(&decoded, block_valid);
        timings.verify_vscc_us = t0.elapsed().as_micros() as u64;

        // Step 3: sequential MVCC, "applied successively to all the valid
        // transactions of the block, starting from the first one"
        // (§2.1.2): an in-block updates overlay makes earlier valid
        // transactions' writes visible to later version checks.
        let t0 = Instant::now();
        let mut overlay: HashMap<&str, Height> = HashMap::new();
        for (i, tx) in decoded.txs.iter().enumerate() {
            if codes[i] != TxValidationCode::Valid {
                continue;
            }
            let conflict = tx.reads.iter().any(|(key, expected)| {
                let expected = expected.map(|v| Height::new(v.block_num, v.tx_num));
                let current = overlay
                    .get(key.as_str())
                    .copied()
                    .or_else(|| self.state_db.get_version(key));
                current != expected
            });
            if conflict {
                codes[i] = TxValidationCode::MvccReadConflict;
                continue;
            }
            for (key, _) in &tx.writes {
                overlay.insert(key, Height::new(decoded.number, i as u64));
            }
        }
        timings.mvcc_us = t0.elapsed().as_micros() as u64;

        // Step 4a: state DB commit of valid write sets.
        let t0 = Instant::now();
        for (i, tx) in decoded.txs.iter().enumerate() {
            if codes[i] != TxValidationCode::Valid {
                continue;
            }
            let mut batch = WriteBatch::new();
            for (k, v) in &tx.writes {
                batch.put(k.clone(), v.clone());
            }
            self.state_db
                .apply(&batch, Height::new(decoded.number, i as u64));
        }
        timings.statedb_commit_us = t0.elapsed().as_micros() as u64;

        // Step 4b/5: ledger commit + history.
        let t0 = Instant::now();
        let tx_ids: Vec<String> = decoded.txs.iter().map(|t| t.tx_id.clone()).collect();
        let modified: Vec<Vec<String>> = decoded
            .txs
            .iter()
            .map(|t| t.writes.iter().map(|(k, _)| k.clone()).collect())
            .collect();
        let committed = self
            .ledger
            .commit_block(block.clone(), &tx_ids, codes.clone(), &modified)
            .map_err(ValidateError::Ledger)?;
        timings.ledger_us = t0.elapsed().as_micros() as u64;

        Ok(BlockValidationResult {
            block_num: decoded.number,
            block_valid,
            codes,
            tx_ids,
            commit_hash: committed.commit_hash,
            timings,
        })
    }

    fn verify_orderer(&self, decoded: &DecodedBlock) -> bool {
        if self.msp.validate(&decoded.orderer_cert).is_err() {
            return false;
        }
        self.bump_verifications(1);
        decoded
            .orderer_cert
            .public_key
            .verify(&decoded.orderer_signed_message, &decoded.orderer_signature)
            .is_ok()
    }

    /// Step 2 worker pool: Fabric dispatches transactions to a bounded
    /// pool of vscc goroutines; we mirror that with scoped threads
    /// pulling from a shared index.
    fn verify_vscc_parallel(
        &self,
        decoded: &DecodedBlock,
        block_valid: bool,
    ) -> Vec<TxValidationCode> {
        let n = decoded.txs.len();
        let next = AtomicUsize::new(0);
        let codes: Vec<parking_lot::Mutex<TxValidationCode>> = (0..n)
            .map(|_| parking_lot::Mutex::new(TxValidationCode::BadPayload))
            .collect();
        let workers = self.workers.min(n.max(1));
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let code = self.validate_one(&decoded.txs[i], block_valid);
                    *codes[i].lock() = code;
                });
            }
        })
        .expect("vscc worker panicked");
        codes.into_iter().map(|m| m.into_inner()).collect()
    }

    fn validate_one(&self, tx: &DecodedTransaction, block_valid: bool) -> TxValidationCode {
        if !block_valid {
            return TxValidationCode::BadSignature;
        }
        // Verification: creator identity chains to its org CA, and the
        // client signature covers the payload.
        if self.msp.validate(&tx.creator_cert).is_err() {
            return TxValidationCode::BadSignature;
        }
        self.bump_verifications(1);
        if tx
            .creator_cert
            .public_key
            .verify(&tx.signed_payload, &tx.client_signature)
            .is_err()
        {
            return TxValidationCode::BadSignature;
        }
        // vscc: verify ALL endorsements (Fabric semantics), collect the
        // valid endorsers, then evaluate the policy sequentially.
        let mut valid_endorsers: Vec<NodeId> = Vec::with_capacity(tx.endorsements.len());
        for e in &tx.endorsements {
            if self.msp.validate(&e.endorser_cert).is_err() {
                continue;
            }
            self.bump_verifications(1);
            if e.endorser_cert
                .public_key
                .verify(&e.signed_message, &e.signature)
                .is_ok()
            {
                valid_endorsers.push(e.endorser_cert.node_id);
            }
        }
        let policy = match self.policies.get(&tx.chaincode) {
            Some(p) => p,
            None => return TxValidationCode::EndorsementPolicyFailure,
        };
        let (satisfied, _visits) = policy.evaluate_sequential(&valid_endorsers);
        if satisfied {
            TxValidationCode::Valid
        } else {
            TxValidationCode::EndorsementPolicyFailure
        }
    }

    fn bump_verifications(&self, n: usize) {
        self.verifications.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::Role;
    use fabric_node::chaincode::KvChaincode;
    use fabric_node::network::FabricNetworkBuilder;
    use fabric_policy::parse;

    fn network_and_validator(
        block_size: usize,
        workers: usize,
    ) -> (fabric_node::FabricNetwork, ValidatorPipeline) {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(block_size)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        // The validator trusts the same org CAs; rebuild an identical MSP
        // (deterministic issuance) and register the network identities.
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), parse("2-outof-2 orgs").unwrap());
        (net, ValidatorPipeline::new(msp, policies, workers))
    }

    #[test]
    fn valid_block_commits_all_transactions() {
        let (mut net, validator) = network_and_validator(2, 4);
        net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let blocks = net
            .submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
            .unwrap();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert!(result.block_valid);
        assert_eq!(result.valid_count(), 2);
        assert_eq!(validator.state_db().get("a").unwrap().value, b"1");
        assert_eq!(validator.ledger().height(), 1);
    }

    #[test]
    fn mvcc_conflict_is_flagged() {
        let (mut net, validator) = network_and_validator(2, 2);
        // Two writes to the same key in one block, both endorsed against
        // the same (missing) version: the second must fail MVCC.
        net.submit_invocation(0, "kv", "put", &["k".into(), "1".into()])
            .unwrap();
        let blocks = net
            .submit_invocation(0, "kv", "put", &["k".into(), "2".into()])
            .unwrap();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(result.codes[0], TxValidationCode::Valid);
        assert_eq!(result.codes[1], TxValidationCode::MvccReadConflict);
        // First write won.
        assert_eq!(validator.state_db().get("k").unwrap().value, b"1");
    }

    #[test]
    fn all_endorsements_are_verified_even_when_policy_needs_fewer() {
        // 1of2 policy with 2 endorsements: Fabric still verifies both.
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(1)
            .chaincode("kv", parse("1-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), parse("1-outof-2 orgs").unwrap());
        let validator = ValidatorPipeline::new(msp, policies, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let before = validator.verifications();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(result.valid_count(), 1);
        // orderer(1) + client(1) + BOTH endorsements(2) = 4
        assert_eq!(validator.verifications() - before, 4);
    }

    #[test]
    fn unknown_chaincode_policy_invalidates() {
        let (mut net, _) = network_and_validator(1, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        // Validator with no policy for "kv".
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let validator = ValidatorPipeline::new(msp, HashMap::new(), 2);
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(result.codes[0], TxValidationCode::EndorsementPolicyFailure);
    }

    #[test]
    fn forged_orderer_invalidates_block() {
        let (mut net, validator) = network_and_validator(1, 2);
        let mut blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        blocks[0].header.number = 0; // keep number but tamper data hash
        blocks[0].header.data_hash = vec![0xAA; 32];
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert!(!result.block_valid);
        assert!(result.codes.iter().all(|c| !c.is_valid()));
    }

    #[test]
    fn timings_are_recorded() {
        let (mut net, validator) = network_and_validator(1, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        // vscc does 3 real ECDSA verifications; it cannot be instant.
        assert!(result.timings.verify_vscc_us > 0);
        assert!(result.timings.total_excl_ledger_us() > 0);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (mut net, v1) = network_and_validator(4, 1);
        let (_, v8) = network_and_validator(4, 8);
        for i in 0..3 {
            net.submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
                .unwrap();
        }
        let blocks = net
            .submit_invocation(0, "kv", "put", &["k3".into(), "1".into()])
            .unwrap();
        let r1 = v1.validate_and_commit(&blocks[0]).unwrap();
        let r8 = v8.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(r1.codes, r8.codes);
        assert_eq!(r1.commit_hash, r8.commit_hash);
    }
}
