//! The functional validation pipeline of a software-only validator peer.
//!
//! Implements the five steps of Figure 2a with real cryptography:
//!
//! 1. retrieve block data and verify the orderer's signature;
//! 2. verify each transaction (client signature) and run vscc
//!    (endorsement signatures + endorsement policy) — parallelized over a
//!    worker pool like Fabric's validator goroutines, and verifying *all*
//!    endorsements regardless of the policy, as Fabric does (§4.3);
//! 3. MVCC: sequentially re-read each valid transaction's read set from
//!    the state database and compare versions;
//! 4. commit: apply valid write sets to the state database and append the
//!    block to the ledger with the validation flags and commit hash;
//! 5. miscellaneous: history database updates.
//!
//! Wall-clock time spent in each stage is recorded so tests and examples
//! can reproduce the bottleneck analysis of Figure 3 on real hardware.
//!
//! # Verification architecture
//!
//! Step 2 runs as a four-phase signature pipeline that mirrors how the
//! Blockchain Machine feeds its `ecdsa_engine` bank (§3.2), rather than
//! naïvely verifying transaction-by-transaction:
//!
//! * **collect** — walk the decoded block once and gather every
//!   signature check (client + all endorsements) as a task, deduplicated
//!   by `(pubkey, digest, signature)` so a triple repeated within the
//!   block is verified at most once;
//! * **batch invert** — compute the `s⁻¹ mod n` of *all* unique tasks
//!   with a single modular inversion
//!   ([`fabric_crypto::ecdsa::batch_s_inverses`]);
//! * **verify in parallel** — a `std::thread::scope` pool of
//!   [`ValidatorPipeline::workers`] OS threads (the paper's "vscc
//!   threads = vCPUs") work-steals tasks from a shared atomic index,
//!   consulting the sharded LRU [`SignatureCache`] before running the
//!   precomputed fixed-base + wNAF ECDSA engine;
//! * **assemble** — fold task verdicts back into per-transaction
//!   validation codes, evaluating each endorsement policy sequentially
//!   (Fabric v1.4 semantics).
//!
//! Per-signature parallelism load-balances much better than per-tx
//! parallelism when endorsement counts vary, and the cache converts the
//! cross-transaction signature redundancy Fabric blocks carry (repeated
//! endorser signatures, replayed envelopes) into lookups.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use fabric_crypto::ecdsa::batch_s_inverses;
use fabric_crypto::identity::NodeId;
use fabric_crypto::{sha256, Msp, Signature, VerifyingKey, U256};
use fabric_ledger::{Ledger, LedgerError, TxValidationCode};
use fabric_policy::Policy;
use fabric_protos::messages::Block;
use fabric_protos::txflow::{decode_block_struct, DecodedBlock};
use fabric_statedb::{Height, StateBackend, StateDb, WriteBatch};

use crate::sigcache::{Claim, SigCacheKey, SigCacheStats, SignatureCache};

/// Per-stage wall-clock timings of one block validation (µs).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Unmarshaling / data retrieval.
    pub unmarshal_us: u64,
    /// Orderer signature check.
    pub block_verify_us: u64,
    /// Parallel verify + vscc.
    pub verify_vscc_us: u64,
    /// Sequential MVCC.
    pub mvcc_us: u64,
    /// State DB commit.
    pub statedb_commit_us: u64,
    /// Ledger commit.
    pub ledger_us: u64,
}

impl StageTimings {
    /// Total validation time excluding ledger commit (the paper's metric
    /// basis, §4.2).
    pub fn total_excl_ledger_us(&self) -> u64 {
        self.unmarshal_us
            + self.block_verify_us
            + self.verify_vscc_us
            + self.mvcc_us
            + self.statedb_commit_us
    }
}

/// Result of validating and committing one block.
#[derive(Debug)]
pub struct BlockValidationResult {
    /// Block number.
    pub block_num: u64,
    /// Whether the block-level (orderer) signature verified.
    pub block_valid: bool,
    /// Per-transaction validation codes, in order.
    pub codes: Vec<TxValidationCode>,
    /// Transaction ids, in order.
    pub tx_ids: Vec<String>,
    /// Commit hash after this block.
    pub commit_hash: [u8; 32],
    /// Wall-clock stage timings.
    pub timings: StageTimings,
}

impl BlockValidationResult {
    /// Number of valid transactions.
    pub fn valid_count(&self) -> usize {
        self.codes.iter().filter(|c| c.is_valid()).count()
    }
}

/// Errors from block validation.
#[derive(Debug)]
pub enum ValidateError {
    /// The block could not be decoded at all.
    Decode(fabric_protos::wire::WireError),
    /// Ledger append failed (ordering/duplicate/chain problems).
    Ledger(LedgerError),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::Decode(e) => write!(f, "block decode failed: {e}"),
            ValidateError::Ledger(e) => write!(f, "ledger commit failed: {e}"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// The software validator peer.
///
/// Owns a state database and ledger; configured with the chaincode
/// endorsement policies and the MSP trust anchors, plus the number of
/// parallel vscc workers (the paper's "vscc threads" = vCPUs, §4.1).
#[derive(Debug)]
pub struct ValidatorPipeline {
    msp: Msp,
    policies: HashMap<String, Policy>,
    state_db: StateDb,
    ledger: Ledger,
    workers: usize,
    /// Count of *underlying* ECDSA verifications performed — cache hits
    /// do not increment this (for Figure 12a's "Fabric verifies all
    /// endorsements" evidence and the cache-dedup tests).
    verifications: AtomicUsize,
    /// Sharded LRU of verification verdicts keyed by
    /// `(pubkey, digest, signature)`. Behind an `Arc` so an admission
    /// front-end (the mempool's verify pool) can share verdicts with the
    /// committer: a signature checked at admission is a cache hit here.
    sig_cache: Arc<SignatureCache>,
    /// Memo of certificate-chain checks by certificate fingerprint: a
    /// block repeats the same few certificates hundreds of times, and
    /// each MSP validation is itself a full ECDSA verification (the CA
    /// signature over the TBS bytes).
    cert_cache: parking_lot::Mutex<HashMap<[u8; 32], bool>>,
}

/// Upper bound on memoized certificate verdicts before the memo resets
/// (a certificate is ~100 bytes of key material; this bounds the memo at
/// roughly a megabyte under pathological cert churn).
const CERT_CACHE_CAPACITY: usize = 16 * 1024;

/// Default number of cached signature verdicts (~1 MiB of keys): a few
/// hundred blocks of smallbank-shaped traffic.
const DEFAULT_SIG_CACHE_CAPACITY: usize = 8192;

impl ValidatorPipeline {
    /// Creates a validator with `workers` parallel vscc workers and the
    /// default signature-cache capacity.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(msp: Msp, policies: HashMap<String, Policy>, workers: usize) -> Self {
        Self::with_cache_capacity(msp, policies, workers, DEFAULT_SIG_CACHE_CAPACITY)
    }

    /// Creates a validator like [`ValidatorPipeline::new`] but with its
    /// state database on an explicit backend instead of the process
    /// default — the differential-audit constructor: the cluster
    /// harness's serial oracle pins its replay to the legacy store
    /// while peers run whatever `FABRIC_STATE_BACKEND` selects, so an
    /// audit pass is also a cross-backend equivalence check.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_state_backend(
        msp: Msp,
        policies: HashMap<String, Policy>,
        workers: usize,
        backend: StateBackend,
    ) -> Self {
        Self::with_storage(
            msp,
            policies,
            workers,
            DEFAULT_SIG_CACHE_CAPACITY,
            StateDb::with_backend(backend),
            Ledger::new(),
        )
    }

    /// Creates a validator with an explicit signature-cache capacity
    /// (`0` effectively disables reuse beyond the in-flight block, since
    /// each shard still holds one entry).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_cache_capacity(
        msp: Msp,
        policies: HashMap<String, Policy>,
        workers: usize,
        cache_capacity: usize,
    ) -> Self {
        Self::with_storage(
            msp,
            policies,
            workers,
            cache_capacity,
            StateDb::new(),
            Ledger::new(),
        )
    }

    /// Creates a validator over *existing* storage handles — the durable
    /// mode: pass the state database and ledger recovered by
    /// `fabric_store::FabricStore::open` and the peer resumes the chain
    /// where it left off (the streaming validator picks its first block
    /// number up from `ledger.next_block_number()`). With a journal
    /// attached to the state database and a durable block store under
    /// the ledger, a block is acknowledged only after its store write:
    /// the commit stage writes state batches (journaled write-ahead) and
    /// appends to the block store before reporting the block committed.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_storage(
        msp: Msp,
        policies: HashMap<String, Policy>,
        workers: usize,
        cache_capacity: usize,
        state_db: StateDb,
        ledger: Ledger,
    ) -> Self {
        Self::with_shared_cache(
            msp,
            policies,
            workers,
            Arc::new(SignatureCache::new(cache_capacity)),
            state_db,
            ledger,
        )
    }

    /// Creates a validator over existing storage *and* an externally
    /// owned signature cache. This is the cache-sharing constructor: the
    /// admission-side verify pool (`fabric-mempool`) and the committer
    /// pass the same `Arc`, so a verdict produced on either side is a
    /// lookup on the other.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_shared_cache(
        msp: Msp,
        policies: HashMap<String, Policy>,
        workers: usize,
        sig_cache: Arc<SignatureCache>,
        state_db: StateDb,
        ledger: Ledger,
    ) -> Self {
        assert!(workers > 0, "at least one vscc worker required");
        ValidatorPipeline {
            msp,
            policies,
            state_db,
            ledger,
            workers,
            verifications: AtomicUsize::new(0),
            sig_cache,
            cert_cache: parking_lot::Mutex::named("peer.cert_memo", HashMap::new()),
        }
    }

    /// Shared handle to the signature-verdict cache.
    pub fn sig_cache(&self) -> Arc<SignatureCache> {
        Arc::clone(&self.sig_cache)
    }

    /// Flushes the storage layer (state journal, then block store) — the
    /// durable group-commit boundary. A no-op on in-memory storage.
    ///
    /// # Errors
    ///
    /// [`ValidateError::Ledger`] when the block store flush fails.
    pub fn flush_storage(&self) -> Result<(), ValidateError> {
        // Journal first: the write-ahead ordering must hold across the
        // two files, so state records are never the missing half.
        self.state_db.flush_journal();
        self.ledger.flush().map_err(ValidateError::Ledger)
    }

    /// Memoized [`Msp::validate`]: the chain check (an ECDSA
    /// verification of the CA signature) runs once per distinct
    /// certificate, then becomes a fingerprint lookup.
    fn msp_validate_cached(&self, cert: &fabric_crypto::Certificate) -> bool {
        let fp = cert.fingerprint();
        {
            let cache = self.cert_cache.lock();
            if let Some(&ok) = cache.get(&fp) {
                return ok;
            }
        }
        let ok = self.msp.validate(cert).is_ok();
        let mut cache = self.cert_cache.lock();
        if cache.len() >= CERT_CACHE_CAPACITY {
            cache.clear();
        }
        cache.insert(fp, ok);
        ok
    }

    /// Signature-cache statistics (hits, misses, residency).
    pub fn sig_cache_stats(&self) -> SigCacheStats {
        self.sig_cache.stats()
    }

    /// The peer's state database handle.
    pub fn state_db(&self) -> StateDb {
        self.state_db.clone()
    }

    /// The peer's ledger handle.
    pub fn ledger(&self) -> Ledger {
        self.ledger.clone()
    }

    /// Total ECDSA verifications performed so far.
    pub fn verifications(&self) -> usize {
        // relaxed: monotonic stats counter; never gates data visibility
        self.verifications.load(Ordering::Relaxed)
    }

    /// Number of vscc workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Validates and commits one block (steps 1–5 of Figure 2a).
    ///
    /// # Errors
    ///
    /// [`ValidateError::Decode`] when the block structure itself is
    /// unparsable (individual bad transactions are *flagged*, not
    /// errors), or [`ValidateError::Ledger`] when the append fails.
    pub fn validate_and_commit(
        &self,
        block: &Block,
    ) -> Result<BlockValidationResult, ValidateError> {
        let verified = self.verify_stage(block)?;
        self.commit_stage(block, verified)
    }

    /// Steps 1–2: unmarshal, orderer check, parallel verify/vscc. This
    /// half touches no shared validator state beyond the caches, so the
    /// streaming validator runs it for several blocks concurrently.
    pub(crate) fn verify_stage(&self, block: &Block) -> Result<VerifiedBlock, ValidateError> {
        let mut timings = StageTimings::default();

        // Step 1a: retrieve block and transaction data (unmarshal).
        let t0 = Instant::now();
        let block_len = block.marshal().len();
        let decoded = decode_block_struct(block, block_len).map_err(ValidateError::Decode)?;
        timings.unmarshal_us = t0.elapsed().as_micros() as u64;

        // Step 1b: verify the orderer signature.
        let t0 = Instant::now();
        let block_valid = self.verify_orderer(&decoded);
        timings.block_verify_us = t0.elapsed().as_micros() as u64;

        // Step 2: parallel verification + vscc.
        let t0 = Instant::now();
        let codes = self.verify_vscc_parallel(&decoded, block_valid);
        timings.verify_vscc_us = t0.elapsed().as_micros() as u64;

        Ok(VerifiedBlock {
            decoded,
            block_valid,
            codes,
            timings,
        })
    }

    /// Steps 3–5: sequential MVCC against the *current* state database,
    /// state commit, ledger append. Must run strictly in block order —
    /// the streaming validator funnels every block through its commit
    /// sequencer before calling this.
    pub(crate) fn commit_stage(
        &self,
        block: &Block,
        verified: VerifiedBlock,
    ) -> Result<BlockValidationResult, ValidateError> {
        let VerifiedBlock {
            decoded,
            block_valid,
            mut codes,
            mut timings,
        } = verified;

        // Step 3: sequential MVCC, "applied successively to all the valid
        // transactions of the block, starting from the first one"
        // (§2.1.2): an in-block updates overlay makes earlier valid
        // transactions' writes visible to later version checks.
        let t0 = Instant::now();
        let mut overlay: HashMap<&str, Height> = HashMap::new();
        for (i, tx) in decoded.txs.iter().enumerate() {
            if codes[i] != TxValidationCode::Valid {
                continue;
            }
            let conflict = tx.reads.iter().any(|(key, expected)| {
                let expected = expected.map(|v| Height::new(v.block_num, v.tx_num));
                let current = overlay
                    .get(key.as_str())
                    .copied()
                    .or_else(|| self.state_db.get_version(key));
                current != expected
            });
            if conflict {
                codes[i] = TxValidationCode::MvccReadConflict;
                continue;
            }
            for (key, _) in &tx.writes {
                overlay.insert(key, Height::new(decoded.number, i as u64));
            }
        }
        timings.mvcc_us = t0.elapsed().as_micros() as u64;

        // Step 4a: state DB commit of valid write sets. The tip guard is
        // the commit-ordering invariant the streaming sequencer relies
        // on: writes land in strictly increasing block order, so MVCC of
        // block N+1 (above) observed every committed write of block N.
        let t0 = Instant::now();
        debug_assert!(
            self.state_db
                .tip_height()
                .is_none_or(|h| h.block_num < decoded.number),
            "state writes for block {} would land at or below the committed tip {:?}",
            decoded.number,
            self.state_db.tip_height(),
        );
        // One batch per valid transaction — including empty write sets,
        // because a durable journal counts one record per valid tx —
        // handed to the state DB as a single block so the sharded
        // backend can fan the apply out over disjoint shards.
        let mut batches: Vec<(WriteBatch, Height)> = Vec::new();
        for (i, tx) in decoded.txs.iter().enumerate() {
            if codes[i] != TxValidationCode::Valid {
                continue;
            }
            let mut batch = WriteBatch::new();
            for (k, v) in &tx.writes {
                batch.put(k.clone(), v.clone());
            }
            batches.push((batch, Height::new(decoded.number, i as u64)));
        }
        self.state_db.apply_block(&batches);
        timings.statedb_commit_us = t0.elapsed().as_micros() as u64;

        // Step 4b/5: ledger commit + history.
        let t0 = Instant::now();
        let tx_ids: Vec<String> = decoded.txs.iter().map(|t| t.tx_id.clone()).collect();
        let modified: Vec<Vec<String>> = decoded
            .txs
            .iter()
            .map(|t| t.writes.iter().map(|(k, _)| k.clone()).collect())
            .collect();
        let committed = self
            .ledger
            .commit_block(block.clone(), &tx_ids, codes.clone(), &modified)
            .map_err(ValidateError::Ledger)?;
        timings.ledger_us = t0.elapsed().as_micros() as u64;

        Ok(BlockValidationResult {
            block_num: decoded.number,
            block_valid,
            codes,
            tx_ids,
            commit_hash: committed.commit_hash,
            timings,
        })
    }

    /// Runs only the *signature* stages of validation — decode, orderer
    /// check, and the parallel verify/vscc phase — without touching
    /// MVCC, the state database, or the ledger. Useful for
    /// re-validation flows and for benchmarking the verification
    /// pipeline in isolation; repeated calls exercise the signature
    /// cache exactly like re-delivered blocks do.
    ///
    /// # Errors
    ///
    /// [`ValidateError::Decode`] when the block structure is unparsable.
    pub fn verify_block_signatures(
        &self,
        block: &Block,
    ) -> Result<Vec<TxValidationCode>, ValidateError> {
        let block_len = block.marshal().len();
        let decoded = decode_block_struct(block, block_len).map_err(ValidateError::Decode)?;
        let block_valid = self.verify_orderer(&decoded);
        Ok(self.verify_vscc_parallel(&decoded, block_valid))
    }

    fn verify_orderer(&self, decoded: &DecodedBlock) -> bool {
        if !self.msp_validate_cached(&decoded.orderer_cert) {
            return false;
        }
        let digest = sha256(&decoded.orderer_signed_message);
        let key = &decoded.orderer_cert.public_key;
        let sig = &decoded.orderer_signature;
        let sinv = s_inverse(sig);
        self.verify_cached(key, &digest, sig, &sinv)
    }

    /// Step 2: the four-phase signature pipeline described in the module
    /// docs — collect tasks, batch-invert `s`, verify in parallel with
    /// the cache, assemble per-transaction codes.
    fn verify_vscc_parallel(
        &self,
        decoded: &DecodedBlock,
        block_valid: bool,
    ) -> Vec<TxValidationCode> {
        // An invalid block invalidates every transaction without burning
        // a single verification, as Fabric does.
        if !block_valid {
            return vec![TxValidationCode::BadSignature; decoded.txs.len()];
        }

        // Phase 1: collect unique verification tasks. Certificate (MSP)
        // validation is cheap and stays sequential here.
        let (tasks, txs) = self.collect_tasks(decoded);

        // Phase 2: one modular inversion for the whole block.
        let sigs: Vec<Signature> = tasks.iter().map(|t| t.sig).collect();
        let sinvs = batch_s_inverses(&sigs);

        // Phase 3: work-stealing parallel verification over *signatures*
        // (better load balance than per-transaction when endorsement
        // counts vary), each worker consulting the shared cache first.
        let verdicts = self.verify_tasks_parallel(&tasks, &sinvs);

        // Phase 4: fold verdicts into per-transaction validation codes.
        txs.iter()
            .map(|tx| match tx {
                TxPlan::BadCreator => TxValidationCode::BadSignature,
                TxPlan::Tasks {
                    chaincode,
                    client,
                    endorsements,
                } => {
                    if !verdicts[*client] {
                        return TxValidationCode::BadSignature;
                    }
                    let valid_endorsers: Vec<NodeId> = endorsements
                        .iter()
                        .filter(|(_, task)| verdicts[*task])
                        .map(|(node, _)| *node)
                        .collect();
                    let policy = match self.policies.get(chaincode.as_str()) {
                        Some(p) => p,
                        None => return TxValidationCode::EndorsementPolicyFailure,
                    };
                    let (satisfied, _visits) = policy.evaluate_sequential(&valid_endorsers);
                    if satisfied {
                        TxValidationCode::Valid
                    } else {
                        TxValidationCode::EndorsementPolicyFailure
                    }
                }
            })
            .collect()
    }

    /// Phase 1: walks the block, MSP-validates certificates, and emits
    /// one [`VerifyTask`] per *unique* `(pubkey, digest, signature)`
    /// triple; transactions reference tasks by index, so a signature
    /// repeated across (or within) transactions is verified once.
    fn collect_tasks<'a>(&self, decoded: &'a DecodedBlock) -> (Vec<VerifyTask<'a>>, Vec<TxPlan>) {
        let mut tasks: Vec<VerifyTask<'a>> = Vec::new();
        let mut index: HashMap<SigCacheKey, usize> = HashMap::new();
        let mut txs = Vec::with_capacity(decoded.txs.len());
        for tx in &decoded.txs {
            // The creator identity must chain to its org CA before its
            // signature is worth checking.
            if !self.msp_validate_cached(&tx.creator_cert) {
                txs.push(TxPlan::BadCreator);
                continue;
            }
            let client = intern_task(
                &mut index,
                &mut tasks,
                &tx.creator_cert.public_key,
                &tx.signed_payload,
                &tx.client_signature,
            );
            // vscc verifies ALL endorsements (Fabric semantics);
            // endorsers with invalid certificates are skipped, exactly
            // like the seed's per-tx loop.
            let mut endorsements = Vec::with_capacity(tx.endorsements.len());
            for e in &tx.endorsements {
                if !self.msp_validate_cached(&e.endorser_cert) {
                    continue;
                }
                let task = intern_task(
                    &mut index,
                    &mut tasks,
                    &e.endorser_cert.public_key,
                    &e.signed_message,
                    &e.signature,
                );
                endorsements.push((e.endorser_cert.node_id, task));
            }
            txs.push(TxPlan::Tasks {
                chaincode: tx.chaincode.clone(),
                client,
                endorsements,
            });
        }
        (tasks, txs)
    }

    /// Phase 3: `workers` scoped OS threads work-steal task indices from
    /// a shared atomic counter. Each unique task is verified exactly
    /// once (or answered by the cache) and its verdict recorded.
    fn verify_tasks_parallel(&self, tasks: &[VerifyTask<'_>], sinvs: &[U256]) -> Vec<bool> {
        let n = tasks.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return tasks
                .iter()
                .zip(sinvs)
                .map(|(t, sinv)| self.verify_task(t, sinv))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let verdicts: Vec<OnceLock<bool>> = (0..n).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // relaxed: work claim needs only RMW uniqueness; verdicts are
                    // published through the scope join below
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let verdict = self.verify_task(&tasks[i], &sinvs[i]);
                    verdicts[i].set(verdict).expect("task index claimed twice");
                });
            }
        });
        verdicts
            .into_iter()
            .map(|slot| slot.into_inner().expect("verify worker missed a task"))
            .collect()
    }

    fn verify_task(&self, task: &VerifyTask<'_>, sinv: &U256) -> bool {
        // claim() is the thundering-herd-safe path: under concurrent
        // misses on one triple (two streaming verify stages, or the
        // admission pool racing the committer) exactly one claimant runs
        // the ECDSA engine and the rest wait for its verdict.
        match self.sig_cache.claim(&task.cache_key) {
            Claim::Verdict(verdict) => verdict,
            Claim::Verify(guard) => {
                self.bump_verifications(1);
                let valid = task
                    .key
                    .verify_prehashed_with_sinv(&task.digest, &task.sig, sinv)
                    .is_ok();
                guard.fulfill(valid);
                valid
            }
        }
    }

    fn verify_cached(
        &self,
        key: &VerifyingKey,
        digest: &[u8; 32],
        sig: &Signature,
        sinv: &U256,
    ) -> bool {
        let cache_key = SigCacheKey::compute(key, digest, sig);
        match self.sig_cache.claim(&cache_key) {
            Claim::Verdict(verdict) => verdict,
            Claim::Verify(guard) => {
                self.bump_verifications(1);
                let valid = key.verify_prehashed_with_sinv(digest, sig, sinv).is_ok();
                guard.fulfill(valid);
                valid
            }
        }
    }

    fn bump_verifications(&self, n: usize) {
        // relaxed: monotonic stats counter; never gates data visibility
        self.verifications.fetch_add(n, Ordering::Relaxed);
    }
}

/// Output of the signature half of validation (steps 1–2), ready for the
/// order-sensitive MVCC/commit half. Fully owned, so the streaming
/// validator can hand it between threads.
#[derive(Debug)]
pub(crate) struct VerifiedBlock {
    pub(crate) decoded: DecodedBlock,
    pub(crate) block_valid: bool,
    pub(crate) codes: Vec<TxValidationCode>,
    pub(crate) timings: StageTimings,
}

/// One unique signature check: the precomputed cache key, the message
/// digest, and the signature; the public key is borrowed from the
/// decoded block.
struct VerifyTask<'a> {
    cache_key: SigCacheKey,
    digest: [u8; 32],
    sig: Signature,
    key: &'a VerifyingKey,
}

/// Per-transaction plan produced by task collection.
enum TxPlan {
    /// Creator certificate failed MSP validation; no tasks emitted.
    BadCreator,
    /// Verifiable transaction: task indices for the client signature and
    /// each MSP-valid endorsement.
    Tasks {
        chaincode: String,
        client: usize,
        endorsements: Vec<(NodeId, usize)>,
    },
}

/// `s⁻¹ mod n` for a single signature (the non-batched path used by the
/// orderer check).
fn s_inverse(sig: &Signature) -> U256 {
    batch_s_inverses(std::slice::from_ref(sig))[0]
}

/// Appends a `(pubkey, digest, signature)` verification task unless an
/// identical triple is already queued, and returns its task index.
fn intern_task<'a>(
    index: &mut HashMap<SigCacheKey, usize>,
    tasks: &mut Vec<VerifyTask<'a>>,
    key: &'a VerifyingKey,
    message: &[u8],
    sig: &Signature,
) -> usize {
    let digest = sha256(message);
    let cache_key = SigCacheKey::compute(key, &digest, sig);
    *index.entry(cache_key).or_insert_with(|| {
        tasks.push(VerifyTask {
            cache_key,
            digest,
            sig: *sig,
            key,
        });
        tasks.len() - 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::Role;
    use fabric_node::chaincode::KvChaincode;
    use fabric_node::network::FabricNetworkBuilder;
    use fabric_policy::parse;

    fn network_and_validator(
        block_size: usize,
        workers: usize,
    ) -> (fabric_node::FabricNetwork, ValidatorPipeline) {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(block_size)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        // The validator trusts the same org CAs; rebuild an identical MSP
        // (deterministic issuance) and register the network identities.
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), parse("2-outof-2 orgs").unwrap());
        (net, ValidatorPipeline::new(msp, policies, workers))
    }

    #[test]
    fn valid_block_commits_all_transactions() {
        let (mut net, validator) = network_and_validator(2, 4);
        net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let blocks = net
            .submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
            .unwrap();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert!(result.block_valid);
        assert_eq!(result.valid_count(), 2);
        assert_eq!(validator.state_db().get("a").unwrap().value, b"1");
        assert_eq!(validator.ledger().height(), 1);
    }

    #[test]
    fn mvcc_conflict_is_flagged() {
        let (mut net, validator) = network_and_validator(2, 2);
        // Two writes to the same key in one block, both endorsed against
        // the same (missing) version: the second must fail MVCC.
        net.submit_invocation(0, "kv", "put", &["k".into(), "1".into()])
            .unwrap();
        let blocks = net
            .submit_invocation(0, "kv", "put", &["k".into(), "2".into()])
            .unwrap();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(result.codes[0], TxValidationCode::Valid);
        assert_eq!(result.codes[1], TxValidationCode::MvccReadConflict);
        // First write won.
        assert_eq!(validator.state_db().get("k").unwrap().value, b"1");
    }

    #[test]
    fn all_endorsements_are_verified_even_when_policy_needs_fewer() {
        // 1of2 policy with 2 endorsements: Fabric still verifies both.
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(1)
            .chaincode("kv", parse("1-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), parse("1-outof-2 orgs").unwrap());
        let validator = ValidatorPipeline::new(msp, policies, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let before = validator.verifications();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(result.valid_count(), 1);
        // orderer(1) + client(1) + BOTH endorsements(2) = 4
        assert_eq!(validator.verifications() - before, 4);
    }

    #[test]
    fn unknown_chaincode_policy_invalidates() {
        let (mut net, _) = network_and_validator(1, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        // Validator with no policy for "kv".
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let validator = ValidatorPipeline::new(msp, HashMap::new(), 2);
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(result.codes[0], TxValidationCode::EndorsementPolicyFailure);
    }

    #[test]
    fn forged_orderer_invalidates_block() {
        let (mut net, validator) = network_and_validator(1, 2);
        let mut blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        blocks[0].header.number = 0; // keep number but tamper data hash
        blocks[0].header.data_hash = vec![0xAA; 32];
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        assert!(!result.block_valid);
        assert!(result.codes.iter().all(|c| !c.is_valid()));
    }

    #[test]
    fn timings_are_recorded() {
        let (mut net, validator) = network_and_validator(1, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let result = validator.validate_and_commit(&blocks[0]).unwrap();
        // vscc does 3 real ECDSA verifications; it cannot be instant.
        assert!(result.timings.verify_vscc_us > 0);
        assert!(result.timings.total_excl_ledger_us() > 0);
    }

    #[test]
    fn repeated_endorsements_verify_once() {
        // A block whose transaction carries N copies of the same
        // endorsement must cost exactly ONE underlying ECDSA
        // verification for all of them (plus one client + one orderer).
        let (mut net, validator) = network_and_validator(1, 4);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let block_len = blocks[0].marshal().len();
        let mut decoded =
            fabric_protos::txflow::decode_block_struct(&blocks[0], block_len).unwrap();
        let endorsement = decoded.txs[0].endorsements[0].clone();
        for _ in 0..7 {
            decoded.txs[0].endorsements.push(endorsement.clone());
        }
        assert_eq!(decoded.txs[0].endorsements.len(), 9);
        let before = validator.verifications();
        let codes = validator.verify_vscc_parallel(&decoded, true);
        assert_eq!(codes[0], TxValidationCode::Valid);
        // 1 client + 2 unique endorsements; the 7 duplicates were
        // deduplicated before reaching the ECDSA engine.
        assert_eq!(validator.verifications() - before, 3);
    }

    #[test]
    fn identical_blocks_hit_the_cache() {
        let (mut net, validator) = network_and_validator(1, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let block_len = blocks[0].marshal().len();
        let decoded = fabric_protos::txflow::decode_block_struct(&blocks[0], block_len).unwrap();
        let first = validator.verifications();
        validator.verify_vscc_parallel(&decoded, true);
        let after_first = validator.verifications();
        assert_eq!(after_first - first, 3, "client + 2 endorsements");
        // Re-validating the same signatures costs zero verifications.
        validator.verify_vscc_parallel(&decoded, true);
        assert_eq!(validator.verifications(), after_first);
        let stats = validator.sig_cache_stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 3);
        assert!(stats.hit_rate() > 0.49);
    }

    #[test]
    fn cache_does_not_leak_verdicts_across_triples() {
        // A *tampered* copy of a cached-valid signature must still fail:
        // the cache key covers (pubkey, digest, signature), so any
        // change misses the cache and verifies for real.
        let (mut net, validator) = network_and_validator(1, 2);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        let block_len = blocks[0].marshal().len();
        let mut decoded =
            fabric_protos::txflow::decode_block_struct(&blocks[0], block_len).unwrap();
        let codes = validator.verify_vscc_parallel(&decoded, true);
        assert_eq!(codes[0], TxValidationCode::Valid);
        // Corrupt the client's signed payload: digest changes, cache
        // misses, verification fails.
        decoded.txs[0].signed_payload.push(0xFF);
        let codes = validator.verify_vscc_parallel(&decoded, true);
        assert_eq!(codes[0], TxValidationCode::BadSignature);
    }

    #[test]
    fn stage_timings_total_is_the_sum_of_its_components() {
        // Distinct powers of two: any component dropped from (or double
        // counted in) total_excl_ledger_us would change the sum.
        let t = StageTimings {
            unmarshal_us: 1,
            block_verify_us: 2,
            verify_vscc_us: 4,
            mvcc_us: 8,
            statedb_commit_us: 16,
            ledger_us: 32,
        };
        assert_eq!(t.total_excl_ledger_us(), 1 + 2 + 4 + 8 + 16);
        // The paper's metric excludes exactly one stage: ledger commit.
        assert_eq!(t.total_excl_ledger_us() + t.ledger_us, 63);
        // Guard against silent stage additions: adding a field to
        // StageTimings changes its size — whoever does that must decide
        // whether the new stage belongs in total_excl_ledger_us and
        // update this test alongside it.
        assert_eq!(
            std::mem::size_of::<StageTimings>(),
            6 * std::mem::size_of::<u64>(),
            "StageTimings gained a field: include it in total_excl_ledger_us \
             (or document why not) and update this test"
        );
    }

    #[test]
    fn stage_timings_are_monotone_over_a_real_block() {
        // For a real validation every stage is non-negative, the
        // exclusive total dominates each component, and adding ledger
        // time never decreases the total (monotonicity of the metric).
        let (mut net, validator) = network_and_validator(2, 2);
        net.submit_invocation(0, "kv", "put", &["m1".into(), "1".into()])
            .unwrap();
        let blocks = net
            .submit_invocation(0, "kv", "put", &["m2".into(), "2".into()])
            .unwrap();
        let t = validator.validate_and_commit(&blocks[0]).unwrap().timings;
        let total = t.total_excl_ledger_us();
        for (name, component) in [
            ("unmarshal", t.unmarshal_us),
            ("block_verify", t.block_verify_us),
            ("verify_vscc", t.verify_vscc_us),
            ("mvcc", t.mvcc_us),
            ("statedb_commit", t.statedb_commit_us),
        ] {
            assert!(
                component <= total,
                "{name} ({component}) exceeds total {total}"
            );
        }
        assert_eq!(
            total,
            t.unmarshal_us + t.block_verify_us + t.verify_vscc_us + t.mvcc_us + t.statedb_commit_us
        );
        assert!(total + t.ledger_us >= total);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (mut net, v1) = network_and_validator(4, 1);
        let (_, v8) = network_and_validator(4, 8);
        for i in 0..3 {
            net.submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
                .unwrap();
        }
        let blocks = net
            .submit_invocation(0, "kv", "put", &["k3".into(), "1".into()])
            .unwrap();
        let r1 = v1.validate_and_commit(&blocks[0]).unwrap();
        let r8 = v8.validate_and_commit(&blocks[0]).unwrap();
        assert_eq!(r1.codes, r8.codes);
        assert_eq!(r1.commit_hash, r8.commit_hash);
    }
}
