//! Calibrated performance model of the software validator peer.
//!
//! Computes the per-stage latency breakdown of Figure 3b / Figure 10 and
//! the commit throughput of Figure 11 for arbitrary workload profiles,
//! using the [`SwCosts`] constants derived from the paper. The model's
//! structure mirrors Fabric v1.4's validator: unmarshal and MVCC/commit
//! are sequential, verify+vscc fans out over a bounded worker pool, and
//! consecutive blocks do not overlap ("mvcc and commit operations are
//! executed sequentially without any pipelining", §4.3).

use fabric_sim::{throughput_per_sec, ServerPool, SimTime};

use crate::costs::SwCosts;

/// Workload shape of one block, as consumed by the performance models.
#[derive(Debug, Clone, Copy)]
pub struct BlockProfile {
    /// Transactions in the block (the paper's "block size").
    pub num_txs: usize,
    /// Endorsements carried by each transaction.
    pub endorsements_per_tx: usize,
    /// State DB reads per transaction.
    pub reads_per_tx: usize,
    /// State DB writes per transaction.
    pub writes_per_tx: usize,
    /// Marshaled envelope bytes per transaction (Gossip form).
    pub tx_bytes: usize,
    /// Extra policy sub-expression visits per transaction beyond the
    /// native k-of-n path (0 for simple policies; the paper's complex
    /// OR-of-ANDs policy costs 11 extra visits).
    pub policy_extra_visits: usize,
    /// Endorsement verifications actually *needed* to satisfy the policy
    /// in the common all-valid case (`min_satisfying`); the hardware's
    /// short-circuit evaluation uses this, software ignores it.
    pub needed_endorsements: usize,
}

impl BlockProfile {
    /// A smallbank-shaped profile: 2 reads, 2 writes, ~3.4 KB envelopes
    /// with the default 2-of-2 policy (2 endorsements).
    pub fn smallbank(num_txs: usize) -> Self {
        BlockProfile {
            num_txs,
            endorsements_per_tx: 2,
            reads_per_tx: 2,
            writes_per_tx: 2,
            tx_bytes: 3_400,
            policy_extra_visits: 0,
            needed_endorsements: 2,
        }
    }

    /// A drm-shaped profile: fewer database accesses than smallbank
    /// (§4.3: "drm application has less accesses to database"), same
    /// 2-of-2 endorsement shape.
    pub fn drm(num_txs: usize) -> Self {
        BlockProfile {
            num_txs,
            endorsements_per_tx: 2,
            reads_per_tx: 1,
            writes_per_tx: 1,
            tx_bytes: 3_300,
            policy_extra_visits: 0,
            needed_endorsements: 2,
        }
    }

    /// Total block bytes in Gossip form.
    pub fn block_bytes(&self) -> usize {
        self.num_txs * self.tx_bytes + 512
    }
}

/// Per-stage latency breakdown for one block (software peer).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwBreakdown {
    /// Unmarshal / block+tx data retrieval.
    pub unmarshal: SimTime,
    /// Orderer signature verification.
    pub block_verify: SimTime,
    /// Parallel verify + vscc makespan (including the serial dispatch
    /// overhead).
    pub verify_vscc: SimTime,
    /// Sequential MVCC re-reads and comparisons.
    pub mvcc: SimTime,
    /// State DB write-back of valid transactions.
    pub statedb_commit: SimTime,
    /// Ledger commit (reported but excluded from throughput, §4.2).
    pub ledger: SimTime,
}

impl SwBreakdown {
    /// Block validation latency excluding ledger commit.
    pub fn total_excl_ledger(&self) -> SimTime {
        self.unmarshal + self.block_verify + self.verify_vscc + self.mvcc + self.statedb_commit
    }

    /// Commit throughput implied for a stream of identical blocks.
    pub fn throughput_tps(&self, num_txs: usize) -> f64 {
        throughput_per_sec(num_txs as u64, self.total_excl_ledger())
    }
}

/// CPU-time attribution by operation category (Figure 3a's profile).
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuProfile {
    /// ECDSA verification time.
    pub ecdsa: SimTime,
    /// SHA-256 hashing time.
    pub sha256: SimTime,
    /// Protobuf unmarshaling time.
    pub unmarshal: SimTime,
    /// State database access time.
    pub statedb: SimTime,
    /// Ledger (block store) time.
    pub ledger: SimTime,
    /// Everything else: validator loop, policy evaluation, gossip/grpc.
    pub other: SimTime,
}

impl CpuProfile {
    /// Total attributed CPU time.
    pub fn total(&self) -> SimTime {
        self.ecdsa + self.sha256 + self.unmarshal + self.statedb + self.ledger + self.other
    }

    /// Share of a category in the total, in percent.
    pub fn share(&self, category: SimTime) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        category as f64 * 100.0 / self.total() as f64
    }
}

/// The software validator performance model.
#[derive(Debug, Clone)]
pub struct SwValidatorModel {
    costs: SwCosts,
    workers: usize,
}

impl SwValidatorModel {
    /// Creates a model with `workers` vCPUs/vscc threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        Self::with_costs(workers, SwCosts::default())
    }

    /// Creates a model with explicit cost constants.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_costs(workers: usize, costs: SwCosts) -> Self {
        assert!(workers > 0, "at least one worker");
        SwValidatorModel { costs, workers }
    }

    /// Number of modeled vCPUs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The cost constants in use.
    pub fn costs(&self) -> &SwCosts {
        &self.costs
    }

    /// Computes the stage breakdown for one block.
    pub fn validate_block(&self, p: &BlockProfile) -> SwBreakdown {
        let c = &self.costs;
        let kb = p.block_bytes() as u64 / 1024;
        let unmarshal =
            c.block_fixed + p.num_txs as u64 * c.unmarshal_per_tx + kb * c.unmarshal_per_kb;
        let block_verify = c.verify();

        let verify_vscc = self.vscc_stage(p, c.verify());

        let mvcc =
            p.num_txs as u64 * (p.reads_per_tx as u64 * c.statedb_read + c.mvcc_compare_per_tx);
        let statedb_commit = p.num_txs as u64 * p.writes_per_tx as u64 * c.statedb_write;
        let ledger = c.ledger_commit_fixed + kb * c.ledger_commit_per_kb;

        SwBreakdown {
            unmarshal,
            block_verify,
            verify_vscc,
            mvcc,
            statedb_commit,
            ledger,
        }
    }

    /// Computes the stage breakdown for one block when the validator
    /// runs the signature cache at a given hit rate (fraction of
    /// verification tasks answered without ECDSA, in `[0, 1]`).
    ///
    /// The calibrated baseline ([`Self::validate_block`]) deliberately
    /// models the paper's cacheless Fabric v1.4; this variant quantifies
    /// what the pipeline's dedup layer recovers on redundant traffic —
    /// each cached task costs one [`SwCosts::sig_cache_lookup`] instead
    /// of a full [`SwCosts::verify`].
    ///
    /// # Panics
    ///
    /// Panics if `hit_rate` is outside `[0, 1]`.
    pub fn validate_block_cached(&self, p: &BlockProfile, hit_rate: f64) -> SwBreakdown {
        assert!(
            (0.0..=1.0).contains(&hit_rate),
            "hit rate must be in [0, 1]"
        );
        let c = &self.costs;
        let mut b = self.validate_block(p);
        let check = (hit_rate * c.sig_cache_lookup as f64 + (1.0 - hit_rate) * c.verify() as f64)
            .round() as SimTime;
        b.verify_vscc = self.vscc_stage(p, check);
        // The orderer check is one more cached-or-verified signature.
        b.block_verify = check;
        b
    }

    /// The verify+vscc stage cost given the cost of one signature
    /// check: each tx carries (1 client + E endorsements) checks plus
    /// any extra policy-evaluation visits, fanned out over the worker
    /// pool, plus the serial per-tx dispatch overhead. Software
    /// verifies ALL endorsements regardless of the policy. Shared by
    /// the baseline and cache-aware models so their cost structure
    /// cannot drift apart.
    fn vscc_stage(&self, p: &BlockProfile, check: SimTime) -> SimTime {
        let c = &self.costs;
        let per_tx_parallel = (1 + p.endorsements_per_tx) as u64 * check
            + p.policy_extra_visits as u64 * c.policy_visit;
        let mut pool = ServerPool::new(self.workers);
        let mut makespan = 0;
        for _ in 0..p.num_txs {
            let (_, finish) = pool.run(0, per_tx_parallel);
            makespan = makespan.max(finish);
        }
        p.num_txs as u64 * c.vscc_overhead_per_tx + makespan
    }

    /// Makespan of a *stream* of `num_blocks` identical blocks through
    /// the pipelined validator: `lanes` concurrent verify servers feed a
    /// single in-order commit sequencer, so verification of block N+1
    /// overlaps MVCC/commit of block N (the paper's Figure 2b stage
    /// overlap). The serial reference is
    /// `num_blocks × (validate_block total + ledger)`; for any
    /// `num_blocks ≥ 2` the stream makespan is strictly smaller. This is
    /// the hardware-independent view of the streaming validator's
    /// scaling — wall-clock overlap on a 1-vCPU CI host is bounded by
    /// the host, not the architecture.
    pub fn stream_makespan(&self, p: &BlockProfile, num_blocks: usize, lanes: usize) -> SimTime {
        let b = self.validate_block(p);
        let verify = b.unmarshal + b.block_verify + b.verify_vscc;
        let commit = b.mvcc + b.statedb_commit + b.ledger;
        let mut pool = ServerPool::new(lanes.max(1));
        let mut commit_free: SimTime = 0;
        for _ in 0..num_blocks {
            // All blocks are assumed queued at t=0 (a saturated stream).
            let (_, verified_at) = pool.run(0, verify);
            let start = verified_at.max(commit_free);
            commit_free = start + commit;
        }
        commit_free
    }

    /// The serial (one block at a time) reference cost for the same
    /// stream: `num_blocks` × the full per-block latency including the
    /// ledger append the stream also pays.
    pub fn serial_stream_cost(&self, p: &BlockProfile, num_blocks: usize) -> SimTime {
        let b = self.validate_block(p);
        num_blocks as u64 * (b.total_excl_ledger() + b.ledger)
    }

    /// CPU-time attribution for one block (drives Figure 3a).
    pub fn cpu_profile(&self, p: &BlockProfile) -> CpuProfile {
        let c = &self.costs;
        let verifies = p.num_txs as u64 * (1 + p.endorsements_per_tx) as u64 + 1;
        let kb = p.block_bytes() as u64 / 1024;
        let b = self.validate_block(p);
        // The per-tx vscc overhead is dominated by protobuf work inside
        // vscc (Fabric re-unmarshals the transaction to evaluate the
        // policy), so Go's profiler attributes it to unmarshaling.
        let unmarshal_cpu = b.unmarshal + p.num_txs as u64 * c.vscc_overhead_per_tx;
        // Gossip/grpc receive + scheduling overhead estimated at ~25% of
        // the accounted CPU, consistent with Figure 3a where
        // ecdsa+sha+unmarshal+statedb together account for ~70-80%.
        let accounted = verifies * c.ecdsa_verify
            + verifies * c.hash_per_verify
            + unmarshal_cpu
            + b.mvcc
            + b.statedb_commit
            + b.ledger
            + p.num_txs as u64 * p.policy_extra_visits as u64 * c.policy_visit;
        let gossip_grpc = accounted * 25 / 100 + kb * fabric_sim::MICROS / 2;
        CpuProfile {
            ecdsa: verifies * c.ecdsa_verify,
            sha256: verifies * c.hash_per_verify,
            unmarshal: unmarshal_cpu,
            statedb: b.mvcc + b.statedb_commit,
            ledger: b.ledger,
            other: p.num_txs as u64 * p.policy_extra_visits as u64 * c.policy_visit + gossip_grpc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::MILLIS;

    #[test]
    fn fig11_shape_sw_scaling_is_weak() {
        // Paper: block 250, 4 -> 16 vCPUs gives only ~1.5x (3,900 ->
        // 5,600 tps).
        let p = BlockProfile::smallbank(250);
        let t4 = SwValidatorModel::new(4)
            .validate_block(&p)
            .throughput_tps(250);
        let t16 = SwValidatorModel::new(16)
            .validate_block(&p)
            .throughput_tps(250);
        let scaling = t16 / t4;
        assert!(t4 > 2_800.0 && t4 < 4_500.0, "4 vCPU tps {t4}");
        assert!(t16 > 4_800.0 && t16 < 6_500.0, "16 vCPU tps {t16}");
        assert!(scaling > 1.3 && scaling < 1.9, "scaling {scaling}");
    }

    #[test]
    fn cached_model_reduces_to_baseline_at_zero_hit_rate() {
        let p = BlockProfile::smallbank(100);
        let m = SwValidatorModel::new(4);
        let base = m.validate_block(&p);
        let cached = m.validate_block_cached(&p, 0.0);
        assert_eq!(base.verify_vscc, cached.verify_vscc);
        assert_eq!(base.block_verify, cached.block_verify);
    }

    #[test]
    fn cached_model_scales_with_hit_rate() {
        let p = BlockProfile::smallbank(100);
        let m = SwValidatorModel::new(4);
        let cold = m.validate_block_cached(&p, 0.0);
        let warm = m.validate_block_cached(&p, 0.9);
        let hot = m.validate_block_cached(&p, 1.0);
        assert!(warm.verify_vscc < cold.verify_vscc);
        assert!(hot.verify_vscc < warm.verify_vscc);
        // At full hit rate only cache probes + serial overhead remain.
        let c = m.costs();
        let floor = 100 * c.vscc_overhead_per_tx;
        assert!(hot.verify_vscc >= floor);
        assert!(hot.verify_vscc < floor + 100 * c.verify());
    }

    #[test]
    fn fig10_shape_block200_breakdown() {
        // Paper: block 200, 8 vCPUs: unmarshal ~8 ms, block validation
        // (excl unmarshal) ~35.9 ms.
        let p = BlockProfile::smallbank(200);
        let b = SwValidatorModel::new(8).validate_block(&p);
        let unm_ms = b.unmarshal as f64 / MILLIS as f64;
        let validation_ms = (b.total_excl_ledger() - b.unmarshal) as f64 / MILLIS as f64;
        assert!((6.0..10.5).contains(&unm_ms), "unmarshal {unm_ms} ms");
        assert!(
            (30.0..42.0).contains(&validation_ms),
            "validation {validation_ms} ms"
        );
    }

    #[test]
    fn throughput_grows_with_block_size() {
        let model = SwValidatorModel::new(8);
        let t50 = model
            .validate_block(&BlockProfile::smallbank(50))
            .throughput_tps(50);
        let t250 = model
            .validate_block(&BlockProfile::smallbank(250))
            .throughput_tps(250);
        assert!(t250 > t50, "amortization: {t50} -> {t250}");
    }

    #[test]
    fn endorsements_reduce_throughput_linearly() {
        // Figure 12a: throughput decreases almost linearly with the
        // number of endorsements; 2of3 == 3of3 for software.
        let model = SwValidatorModel::new(8);
        let mut p = BlockProfile::smallbank(150);
        p.endorsements_per_tx = 1;
        let t1 = model.validate_block(&p).throughput_tps(150);
        p.endorsements_per_tx = 2;
        let t2 = model.validate_block(&p).throughput_tps(150);
        p.endorsements_per_tx = 3;
        let t3 = model.validate_block(&p).throughput_tps(150);
        assert!(t1 > t2 && t2 > t3);
        // 2of3 vs 3of3: same endorsement count -> identical time.
        let mut p2of3 = p;
        p2of3.needed_endorsements = 2;
        assert_eq!(
            model.validate_block(&p).total_excl_ledger(),
            model.validate_block(&p2of3).total_excl_ledger()
        );
    }

    #[test]
    fn complex_policy_slows_software_peer() {
        // Figure 12b: the OR-of-ANDs policy drops software to ~2,700 tps.
        let model = SwValidatorModel::new(8);
        let mut simple = BlockProfile::smallbank(150);
        simple.endorsements_per_tx = 4;
        simple.needed_endorsements = 2;
        let mut complex = simple;
        complex.policy_extra_visits = 11;
        let t_simple = model.validate_block(&simple).throughput_tps(150);
        let t_complex = model.validate_block(&complex).throughput_tps(150);
        assert!(t_complex < t_simple);
        assert!(
            (2_200.0..3_200.0).contains(&t_complex),
            "complex {t_complex}"
        );
    }

    #[test]
    fn cpu_profile_matches_fig3a_ordering() {
        // ecdsa dominates; sha ~ 10%; unmarshal ~ 10%.
        let profile = SwValidatorModel::new(8).cpu_profile(&BlockProfile::smallbank(200));
        let ecdsa = profile.share(profile.ecdsa);
        let sha = profile.share(profile.sha256);
        let unm = profile.share(profile.unmarshal);
        let statedb = profile.share(profile.statedb);
        assert!(ecdsa > 30.0 && ecdsa < 50.0, "ecdsa {ecdsa}%");
        assert!(sha > 5.0 && sha < 15.0, "sha {sha}%");
        assert!(unm > 3.0 && unm < 15.0, "unmarshal {unm}%");
        assert!(statedb < ecdsa, "statedb {statedb}% below ecdsa");
        // ecdsa is the single most expensive operation.
        for other in [
            profile.sha256,
            profile.unmarshal,
            profile.statedb,
            profile.ledger,
        ] {
            assert!(profile.ecdsa > other);
        }
    }

    #[test]
    fn stream_makespan_shows_stage_overlap() {
        let p = BlockProfile::smallbank(100);
        let m = SwValidatorModel::new(4);
        let serial = m.serial_stream_cost(&p, 8);
        let one_lane = m.stream_makespan(&p, 8, 1);
        let two_lanes = m.stream_makespan(&p, 8, 2);
        // Even a single verify lane overlaps verify(N+1) with commit(N).
        assert!(one_lane < serial, "one lane {one_lane} vs serial {serial}");
        // More lanes can only help (verify is the long stage here).
        assert!(two_lanes <= one_lane);
        // A one-block stream degenerates to the serial latency.
        assert_eq!(m.stream_makespan(&p, 1, 2), m.serial_stream_cost(&p, 1));
        // The pipeline bound: makespan can never beat the serial commit
        // chain (commit is strictly in-order).
        let b = m.validate_block(&p);
        assert!(two_lanes >= 8 * (b.mvcc + b.statedb_commit + b.ledger));
    }

    #[test]
    fn drm_faster_than_smallbank_for_software() {
        // Figure 13: drm has fewer db accesses -> faster mvcc/commit.
        let model = SwValidatorModel::new(8);
        let t_small = model
            .validate_block(&BlockProfile::smallbank(150))
            .throughput_tps(150);
        let t_drm = model
            .validate_block(&BlockProfile::drm(150))
            .throughput_tps(150);
        assert!(t_drm > t_small);
    }
}
