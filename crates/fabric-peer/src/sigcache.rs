//! Sharded LRU signature-verification cache.
//!
//! Fabric blocks carry heavy signature redundancy: the same endorser
//! signs many transactions, gossip can deliver the same envelope twice,
//! and re-validation after reconfiguration replays identical signatures.
//! The Blockchain Machine gets this dedup for free — its hardware
//! `ecdsa_engine` bank is fronted by the protocol's identity/annotation
//! cache — so the software validator mirrors it: a verification result
//! keyed by `SHA-256(pubkey ‖ digest ‖ r ‖ s)` is cached, and a repeated
//! `(key, message, signature)` triple never reaches the ECDSA engine
//! twice.
//!
//! The cache is sharded 16 ways (key-prefix selects the shard) so the
//! vscc worker threads rarely contend on the same lock, and each shard
//! is a classic arena-backed doubly-linked LRU with O(1) lookup, insert,
//! touch, and eviction. Both positive *and* negative verdicts are
//! cached: an attacker replaying a bad signature hits the cache instead
//! of burning a verification.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use fabric_crypto::{sha256, Signature, VerifyingKey};

const SHARDS: usize = 16;

/// Cache key: SHA-256 over the SEC1 public key, the message digest, and
/// the raw `(r, s)` pair. 32 bytes of collision-resistant identity for a
/// (key, message, signature) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SigCacheKey([u8; 32]);

impl SigCacheKey {
    /// Derives the cache key for a verification triple.
    pub fn compute(key: &VerifyingKey, digest: &[u8; 32], sig: &Signature) -> Self {
        let mut material = Vec::with_capacity(65 + 32 + 64);
        material.extend_from_slice(&key.to_sec1_bytes());
        material.extend_from_slice(digest);
        material.extend_from_slice(&sig.to_raw_bytes());
        SigCacheKey(sha256(&material))
    }

    /// Wraps a precomputed 32-byte key digest. The differential test
    /// harness uses this to pin [`Self::compute`]'s derivation to the
    /// plain byte encodings (SEC1 key ‖ digest ‖ raw `r‖s`), which is
    /// what makes cached verdicts independent of the active field
    /// backend.
    pub fn from_bytes(digest: [u8; 32]) -> Self {
        SigCacheKey(digest)
    }

    fn shard(&self) -> usize {
        self.0[0] as usize % SHARDS
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SigCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to real verification.
    pub misses: u64,
    /// Claims that waited on an in-flight verification instead of
    /// running their own (thundering-herd dedup).
    pub coalesced: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries across all shards.
    pub capacity: usize,
}

impl SigCacheStats {
    /// Hit rate in [0, 1]; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU cache of signature-verification verdicts.
#[derive(Debug)]
pub struct SignatureCache {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

/// One in-flight verification: waiters block on the condvar until the
/// claimant publishes a verdict (or abandons, forcing a re-claim).
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

#[derive(Debug, Clone, Copy)]
enum FlightState {
    Pending,
    Done(bool),
    Abandoned,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::named("peer.sigcache.flight", FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, state: FlightState) {
        *self.state.lock() = state;
        self.cv.notify_all();
    }
}

/// Outcome of [`SignatureCache::claim`]: either a verdict is already
/// available (cached, or produced by a concurrent claimant we waited
/// on), or the caller holds the exclusive claim and must verify.
#[derive(Debug)]
pub enum Claim<'a> {
    /// A verdict was available without verifying.
    Verdict(bool),
    /// The caller owns the verification for this key; every concurrent
    /// `claim` on the same key blocks until the guard is fulfilled (or
    /// dropped, which wakes the waiters to re-claim).
    Verify(ClaimGuard<'a>),
}

/// Exclusive right to verify one cache key. Call
/// [`ClaimGuard::fulfill`] with the verdict; dropping the guard without
/// fulfilling (panic, early return) releases the claim so a waiter can
/// retry instead of deadlocking.
#[derive(Debug)]
pub struct ClaimGuard<'a> {
    cache: &'a SignatureCache,
    key: SigCacheKey,
    flight: Arc<Flight>,
    done: bool,
}

impl ClaimGuard<'_> {
    /// The key this claim covers.
    pub fn key(&self) -> &SigCacheKey {
        &self.key
    }

    /// Publishes the verdict: inserts it into the cache, then wakes
    /// every waiter coalesced behind this claim.
    pub fn fulfill(mut self, valid: bool) {
        self.done = true;
        {
            let mut shard = self.cache.shards[self.key.shard()].lock();
            shard.insert(self.key, valid);
            shard.inflight.remove(&self.key);
        }
        self.flight.resolve(FlightState::Done(valid));
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Abandoned claim (panic or early return in the verifier):
        // unpark the waiters so one of them re-claims the key.
        {
            let mut shard = self.cache.shards[self.key.shard()].lock();
            shard.inflight.remove(&self.key);
        }
        self.flight.resolve(FlightState::Abandoned);
    }
}

impl SignatureCache {
    /// Creates a cache holding up to `capacity` verdicts (rounded up to
    /// a multiple of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        SignatureCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::named("peer.sigcache.shard", LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Looks up a verdict or claims the right to produce one.
    ///
    /// Exactly one caller per key gets [`Claim::Verify`] at a time;
    /// concurrent callers for the same key block until the claimant
    /// publishes (they then return [`Claim::Verdict`] and count as
    /// `coalesced` in [`Self::stats`]) — so a thundering herd on one
    /// `(key, digest, sig)` triple runs a single ECDSA verification.
    pub fn claim(&self, key: &SigCacheKey) -> Claim<'_> {
        loop {
            let flight = {
                let mut shard = self.shards[key.shard()].lock();
                if let Some(valid) = shard.get(key) {
                    // relaxed: monotonic stats counter; never gates data visibility
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Claim::Verdict(valid);
                }
                match shard.inflight.get(key) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        // relaxed: monotonic stats counter; never gates data visibility
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Arc::new(Flight::new());
                        shard.inflight.insert(*key, Arc::clone(&flight));
                        return Claim::Verify(ClaimGuard {
                            cache: self,
                            key: *key,
                            flight,
                            done: false,
                        });
                    }
                }
            };
            // Wait outside the shard lock: the claimant needs it to
            // publish, and unrelated keys must not stall behind us.
            let mut state = flight.state.lock();
            loop {
                match *state {
                    FlightState::Done(valid) => {
                        // relaxed: monotonic stats counter; never gates data visibility
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Claim::Verdict(valid);
                    }
                    FlightState::Abandoned => break,
                    FlightState::Pending => {
                        state = flight.cv.wait(state);
                    }
                }
            }
            // Claimant abandoned: retry; one of the waiters re-claims.
        }
    }

    /// Looks up a verdict, refreshing the entry's recency on a hit.
    pub fn get(&self, key: &SigCacheKey) -> Option<bool> {
        let mut shard = self.shards[key.shard()].lock();
        match shard.get(key) {
            Some(valid) => {
                // relaxed: monotonic stats counter; never gates data visibility
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(valid)
            }
            None => {
                // relaxed: monotonic stats counter; never gates data visibility
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a verdict, evicting the least-recently-used entry if the
    /// shard is full. Also resolves any in-flight claim on the key so
    /// waiters pick up the externally supplied verdict.
    pub fn insert(&self, key: SigCacheKey, valid: bool) {
        let flight = {
            let mut shard = self.shards[key.shard()].lock();
            shard.insert(key, valid);
            shard.inflight.remove(&key)
        };
        if let Some(flight) = flight {
            flight.resolve(FlightState::Done(valid));
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> SigCacheStats {
        let entries = self.shards.iter().map(|s| s.lock().map.len()).sum();
        let capacity =
            self.shards.len() * self.shards.first().map(|s| s.lock().capacity).unwrap_or(0);
        SigCacheStats {
            // relaxed: stats snapshot; counters are independent and approximate
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries,
            capacity,
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    key: SigCacheKey,
    valid: bool,
    prev: usize,
    next: usize,
}

/// One shard: hash map into a slot arena threaded as a doubly-linked
/// recency list (head = most recent, tail = eviction candidate).
#[derive(Debug)]
struct LruShard {
    capacity: usize,
    map: HashMap<SigCacheKey, usize>,
    arena: Vec<Entry>,
    head: usize,
    tail: usize,
    /// Keys currently being verified by a claimant; waiters coalesce on
    /// the flight instead of verifying themselves.
    inflight: HashMap<SigCacheKey, Arc<Flight>>,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            capacity,
            map: HashMap::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            inflight: HashMap::new(),
        }
    }

    fn get(&mut self, key: &SigCacheKey) -> Option<bool> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(self.arena[idx].valid)
    }

    fn insert(&mut self, key: SigCacheKey, valid: bool) {
        if let Some(&idx) = self.map.get(&key) {
            self.arena[idx].valid = valid;
            self.touch(idx);
            return;
        }
        let idx = if self.arena.len() < self.capacity {
            self.arena.push(Entry {
                key,
                valid,
                prev: NIL,
                next: NIL,
            });
            self.arena.len() - 1
        } else {
            // Evict the tail slot and reuse it.
            let idx = self.tail;
            self.unlink(idx);
            let old_key = self.arena[idx].key;
            self.map.remove(&old_key);
            self.arena[idx] = Entry {
                key,
                valid,
                prev: NIL,
                next: NIL,
            };
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Moves an existing linked entry to the front.
    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.arena[idx].prev, self.arena[idx].next);
        if prev != NIL {
            self.arena[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.arena[idx].prev = NIL;
        self.arena[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.arena[idx].prev = NIL;
        self.arena[idx].next = self.head;
        if self.head != NIL {
            self.arena[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::ecdsa::SigningKey;

    fn triple(tag: u8) -> (VerifyingKey, [u8; 32], Signature) {
        let key = SigningKey::from_seed(&[tag]);
        let digest = sha256(&[tag, 1, 2, 3]);
        let sig = key.sign_prehashed(&digest);
        (key.verifying_key().clone(), digest, sig)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = SignatureCache::new(64);
        let (vk, digest, sig) = triple(1);
        let key = SigCacheKey::compute(&vk, &digest, &sig);
        assert_eq!(cache.get(&key), None);
        cache.insert(key, true);
        assert_eq!(cache.get(&key), Some(true));
        assert_eq!(cache.get(&key), Some(true));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_verdicts_are_cached_too() {
        let cache = SignatureCache::new(64);
        let (vk, digest, mut sig) = triple(2);
        sig.r = sig.s; // garbage but in-range
        let key = SigCacheKey::compute(&vk, &digest, &sig);
        cache.insert(key, false);
        assert_eq!(cache.get(&key), Some(false));
    }

    #[test]
    fn distinct_triples_get_distinct_keys() {
        let (vk1, d1, s1) = triple(3);
        let (vk2, d2, s2) = triple(4);
        assert_ne!(
            SigCacheKey::compute(&vk1, &d1, &s1),
            SigCacheKey::compute(&vk2, &d2, &s2)
        );
        // Same key+digest, different signature: distinct entry.
        assert_ne!(
            SigCacheKey::compute(&vk1, &d1, &s1),
            SigCacheKey::compute(&vk1, &d1, &s2)
        );
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        // One-entry shards: every insert evicts the shard's prior entry.
        let cache = SignatureCache::new(SHARDS);
        let (vk, digest, sig) = triple(5);
        let a = SigCacheKey::compute(&vk, &digest, &sig);
        cache.insert(a, true);
        assert_eq!(cache.get(&a), Some(true));
        // Find another key landing in the same shard, then insert it.
        let mut tag = 6u8;
        let b = loop {
            let (vk2, d2, s2) = triple(tag);
            let candidate = SigCacheKey::compute(&vk2, &d2, &s2);
            if candidate.shard() == a.shard() {
                break candidate;
            }
            tag += 1;
        };
        cache.insert(b, true);
        assert_eq!(cache.get(&b), Some(true));
        assert_eq!(cache.get(&a), None, "old entry evicted from full shard");
    }

    #[test]
    fn concurrent_probes_coalesce_into_one_verify() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let cache = SignatureCache::new(64);
        let (vk, digest, sig) = triple(7);
        let key = SigCacheKey::compute(&vk, &digest, &sig);
        const PROBES: usize = 8;
        let barrier = Barrier::new(PROBES);
        let verifies = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..PROBES {
                s.spawn(|| {
                    barrier.wait();
                    let valid = match cache.claim(&key) {
                        Claim::Verdict(v) => v,
                        Claim::Verify(guard) => {
                            verifies.fetch_add(1, Ordering::SeqCst);
                            // Slow verify: keep the claim open long
                            // enough that the other probes pile up.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            let ok = vk.verify_prehashed(&digest, &sig).is_ok();
                            guard.fulfill(ok);
                            ok
                        }
                    };
                    assert!(valid, "all probes must see the real verdict");
                });
            }
        });

        assert_eq!(
            verifies.load(Ordering::SeqCst),
            1,
            "exactly one probe runs the ECDSA verify; the herd coalesces"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.coalesced + stats.hits, (PROBES - 1) as u64);
        assert_eq!(cache.get(&key), Some(true));
    }

    #[test]
    fn abandoned_claim_wakes_a_waiter_to_retry() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let cache = SignatureCache::new(64);
        let key = SigCacheKey::from_bytes(sha256(b"abandoned"));
        let barrier = Barrier::new(2);
        let claims = AtomicUsize::new(0);

        std::thread::scope(|s| {
            s.spawn(|| {
                // First claimant: drop the guard without a verdict.
                if let Claim::Verify(guard) = cache.claim(&key) {
                    claims.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    drop(guard);
                } else {
                    panic!("first claim must win the verify slot");
                }
            });
            s.spawn(|| {
                barrier.wait();
                // Second probe blocks on the flight, then must be handed
                // the claim (not a verdict) once the first abandons.
                match cache.claim(&key) {
                    Claim::Verify(guard) => {
                        claims.fetch_add(1, Ordering::SeqCst);
                        guard.fulfill(false);
                    }
                    Claim::Verdict(_) => panic!("abandoned flight must not yield a verdict"),
                }
            });
        });

        assert_eq!(claims.load(Ordering::SeqCst), 2);
        assert_eq!(cache.get(&key), Some(false));
    }

    #[test]
    fn external_insert_resolves_inflight_claim() {
        let cache = SignatureCache::new(64);
        let key = SigCacheKey::from_bytes(sha256(b"external-insert"));
        let guard = match cache.claim(&key) {
            Claim::Verify(g) => g,
            Claim::Verdict(_) => panic!("fresh key cannot have a verdict"),
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.claim(&key));
            // Give the waiter a moment to park on the flight, then
            // resolve it via a plain insert (e.g. an admission-side
            // verifier publishing through the shared cache).
            std::thread::sleep(std::time::Duration::from_millis(20));
            cache.insert(key, true);
            match waiter.join().unwrap() {
                Claim::Verdict(v) => assert!(v),
                Claim::Verify(_) => panic!("insert must resolve the waiter"),
            }
        });
        // The original claimant publishing afterwards is harmless.
        guard.fulfill(true);
        assert_eq!(cache.get(&key), Some(true));
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let cache = SignatureCache::new(32);
        let keys: Vec<SigCacheKey> = (0..200u8).map(|i| SigCacheKey(sha256(&[i]))).collect();
        for (i, k) in keys.iter().enumerate() {
            cache.insert(*k, i % 2 == 0);
        }
        let stats = cache.stats();
        assert!(stats.entries <= stats.capacity);
        // Recently inserted keys should mostly be resident; verify the
        // very last one is.
        assert_eq!(cache.get(keys.last().unwrap()), Some(false));
    }
}
