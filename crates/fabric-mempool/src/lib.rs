//! Sharded admission front-end for the ordering service.
//!
//! The Blockchain Machine accelerates the *validation* half of a Fabric
//! peer, but in Fabric's architecture (Androulaki et al.) a transaction
//! is signature-checked and deduplicated **before** ordering — so the
//! committer mostly revisits verdicts instead of producing them. This
//! crate supplies that front-end for the software stack:
//!
//! * **admission** — [`Mempool::admit`] does a light three-layer decode
//!   (see [`admit`]), hash-shards by transaction id, and rejects
//!   duplicates against a per-shard replay window; when the pool is at
//!   capacity the submission is *shed at admission* (counted, never
//!   ordered) instead of overloading the pipeline downstream;
//! * **pre-ordering verification** — [`Mempool::verify_pending`] runs a
//!   work-stealing pool of OS threads, decoupled from the commit path,
//!   that checks client signatures (and optionally warms endorsement
//!   verdicts) through the *shared* [`SignatureCache`] — the same cache
//!   the committer's vscc stage consults, so every signature verified
//!   here is a cache hit there;
//! * **draining** — [`Mempool::drain`] hands verified transactions to
//!   the orderer in admission order, flipping their dedup records into
//!   the replay window (TTL-evicted after `replay_ttl` further
//!   admissions).
//!
//! Determinism: verification parallelism never reorders transactions —
//! ready transactions are keyed by admission sequence, so the blocks an
//! orderer cuts from [`Mempool::drain`] are identical across worker
//! counts and thread schedules.

#![warn(missing_docs)]

pub mod admit;

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use fabric_crypto::{sha256, Msp};
use fabric_peer::sigcache::Claim;
use fabric_protos::txflow::decode_transaction;
use parking_lot::Mutex;

pub use admit::{decode_admission, AdmissionTx};
// Re-exported so downstream crates can build a shared cache without
// depending on fabric-peer directly.
pub use fabric_peer::{SigCacheKey, SigCacheStats, SignatureCache};

/// Tuning knobs for a [`Mempool`].
#[derive(Debug, Clone, Copy)]
pub struct MempoolConfig {
    /// Dedup/replay-window shards (the admission lock granularity).
    pub shards: usize,
    /// Backpressure bound: when `pending + ready` reaches this, new
    /// distinct transactions are shed at admission.
    pub max_pending: usize,
    /// Replay-window TTL in *admissions*: a delivered transaction's
    /// dedup record is evicted once `replay_ttl` further transactions
    /// have been admitted after it.
    pub replay_ttl: u64,
    /// Verify-pool worker threads.
    pub verify_workers: usize,
    /// Whether the verify pool also decodes endorsements and warms
    /// their verdicts into the shared cache (making the committer's
    /// vscc stage nearly lookup-only).
    pub warm_endorsements: bool,
}

impl Default for MempoolConfig {
    fn default() -> Self {
        MempoolConfig {
            shards: 16,
            max_pending: 4096,
            replay_ttl: 1 << 20,
            verify_workers: 4,
            warm_endorsements: true,
        }
    }
}

/// Outcome of one [`Mempool::admit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Accepted into the pending set; will be verified and drained.
    Admitted,
    /// A transaction with this id is already tracked (pending, ready,
    /// or inside the replay window): dropped without a verify.
    Duplicate,
    /// Load shed: the pool is at `max_pending`; rejected *before*
    /// ordering so the overload never reaches the validators.
    Shed,
    /// The envelope failed the light admission decode.
    Malformed,
}

/// What one [`Mempool::verify_pending`] call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyReport {
    /// Transactions pulled from the pending queue this call.
    pub batch: usize,
    /// Of those, how many verified valid (now ready to drain).
    pub valid: usize,
    /// Rejected: bad client signature or untrusted creator.
    pub invalid: usize,
    /// Endorsement verdicts warmed into the shared cache.
    pub endorsements_warmed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Summed per-worker busy time (µs).
    pub busy_us: u64,
    /// Wall-clock time of the parallel phase (µs).
    pub wall_us: u64,
}

impl VerifyReport {
    /// Fraction of the pool's thread-time spent verifying, in [0, 1]:
    /// `busy / (wall × workers)`. Zero when nothing ran.
    pub fn occupancy(&self) -> f64 {
        if self.workers == 0 || self.wall_us == 0 {
            0.0
        } else {
            (self.busy_us as f64 / (self.wall_us as f64 * self.workers as f64)).min(1.0)
        }
    }

    /// Folds another report into this one (for multi-batch runs).
    pub fn accumulate(&mut self, other: &VerifyReport) {
        self.batch += other.batch;
        self.valid += other.valid;
        self.invalid += other.invalid;
        self.endorsements_warmed += other.endorsements_warmed;
        self.workers = self.workers.max(other.workers);
        self.busy_us += other.busy_us;
        self.wall_us += other.wall_us;
    }
}

/// Point-in-time mempool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Distinct transactions accepted.
    pub admitted: u64,
    /// Submissions rejected as duplicates (dedup hits).
    pub duplicates: u64,
    /// Submissions shed by backpressure.
    pub shed: u64,
    /// Submissions that failed the light decode.
    pub malformed: u64,
    /// Admitted transactions rejected by the verify pool.
    pub invalid: u64,
    /// Transactions handed to the orderer via [`Mempool::drain`].
    pub drained: u64,
    /// Underlying ECDSA verifications run by the verify pool (cache
    /// hits and coalesced waits excluded).
    pub verifications: u64,
    /// Currently pending (admitted, not yet verified).
    pub pending: usize,
    /// Currently ready (verified, not yet drained).
    pub ready: usize,
    /// Dedup records tracked across all shards (pending + ready +
    /// replay window).
    pub tracked: usize,
}

impl MempoolStats {
    /// Total submissions that reached the dedup check.
    pub fn submissions(&self) -> u64 {
        self.admitted + self.duplicates + self.shed
    }

    /// Fraction of submissions answered by the dedup window.
    pub fn dedup_hit_rate(&self) -> f64 {
        let total = self.submissions();
        if total == 0 {
            0.0
        } else {
            self.duplicates as f64 / total as f64
        }
    }

    /// Fraction of submissions shed by backpressure.
    pub fn shed_rate(&self) -> f64 {
        let total = self.submissions();
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

/// Dedup record lifecycle. `Pending` and `Ready` entries are immune to
/// TTL eviction (they are bounded by `max_pending` instead); `Recorded`
/// entries form the replay window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Admitted, awaiting verification.
    Pending,
    /// Verified valid, awaiting drain.
    Ready,
    /// Drained to the orderer; kept to suppress replays until TTL.
    Recorded,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, EntryState>,
    /// Admission order within this shard: `(admission seq, tx id)`,
    /// oldest first — the TTL eviction scan.
    window: VecDeque<(u64, String)>,
}

impl Shard {
    /// Evicts replay-window records whose TTL has expired. Stops at the
    /// first record still in flight: eviction strictly follows admission
    /// order, so a younger record can never be evicted before an older
    /// one (the idempotence suite's invariant).
    fn evict_expired(&mut self, now_seq: u64, ttl: u64) {
        while let Some((seq, tx_id)) = self.window.front() {
            // Expired once `ttl` *further* transactions were admitted:
            // the record itself holds admission `seq`, so the counter
            // reads `seq + 1 + ttl` when its window closes.
            if seq.saturating_add(ttl) >= now_seq {
                break;
            }
            match self.entries.get(tx_id) {
                Some(EntryState::Recorded) => {
                    let tx_id = self.window.pop_front().expect("front checked").1;
                    self.entries.remove(&tx_id);
                }
                // Entry already removed (rejected as invalid): drop the
                // stale window slot.
                None => {
                    self.window.pop_front();
                }
                // Still pending/ready: in-flight transactions are never
                // TTL-evicted, and neither is anything younger.
                Some(_) => break,
            }
        }
    }
}

/// A transaction sitting in the pending queue, carrying everything the
/// verify pool needs without re-decoding the admission layers.
#[derive(Debug)]
struct QueuedTx {
    seq: u64,
    tx_id: String,
    envelope: Vec<u8>,
    tx: AdmissionTx,
}

/// The sharded admission front-end. See the crate docs for the flow.
#[derive(Debug)]
pub struct Mempool {
    cfg: MempoolConfig,
    shards: Vec<Mutex<Shard>>,
    pending: Mutex<VecDeque<QueuedTx>>,
    ready: Mutex<BTreeMap<u64, (String, Vec<u8>)>>,
    pending_count: AtomicUsize,
    ready_count: AtomicUsize,
    seq: AtomicU64,
    cache: Arc<SignatureCache>,
    /// Trust anchors for admission-time creator validation; `None`
    /// skips the membership check (signature-only admission).
    msp: Option<Msp>,
    cert_memo: Mutex<HashMap<[u8; 32], bool>>,
    admitted: AtomicU64,
    duplicates: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
    invalid: AtomicU64,
    drained: AtomicU64,
    verifications: AtomicU64,
}

impl Mempool {
    /// Creates a mempool verifying against `cache` (share this `Arc`
    /// with the committer's [`fabric_peer::ValidatorPipeline`] so
    /// admission verdicts are committer cache hits), without
    /// membership validation.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `max_pending`, or `verify_workers` is zero.
    pub fn new(cfg: MempoolConfig, cache: Arc<SignatureCache>) -> Self {
        Self::with_msp(cfg, cache, None)
    }

    /// Creates a mempool that additionally validates each creator
    /// certificate against `msp` before burning a signature verify.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `max_pending`, or `verify_workers` is zero.
    pub fn with_msp(cfg: MempoolConfig, cache: Arc<SignatureCache>, msp: Option<Msp>) -> Self {
        assert!(cfg.shards > 0, "mempool needs at least one shard");
        assert!(cfg.max_pending > 0, "max_pending of zero sheds everything");
        assert!(cfg.verify_workers > 0, "verify pool needs a worker");
        Mempool {
            shards: (0..cfg.shards)
                .map(|_| Mutex::named("mempool.shard", Shard::default()))
                .collect(),
            pending: Mutex::named("mempool.pending", VecDeque::new()),
            ready: Mutex::named("mempool.ready", BTreeMap::new()),
            pending_count: AtomicUsize::new(0),
            ready_count: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            cache,
            msp,
            cert_memo: Mutex::named("mempool.cert_memo", HashMap::new()),
            admitted: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            verifications: AtomicU64::new(0),
            cfg,
        }
    }

    fn shard_of(&self, tx_id: &str) -> usize {
        let mut h = DefaultHasher::new();
        tx_id.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Admits one submitted envelope: light decode, shard dedup, replay
    /// window, backpressure — in that order, so a duplicate of a
    /// tracked transaction is reported as [`AdmitOutcome::Duplicate`]
    /// even when the pool is full.
    pub fn admit(&self, envelope: &[u8]) -> AdmitOutcome {
        let tx = match decode_admission(envelope) {
            Ok(tx) => tx,
            Err(_) => {
                // relaxed: monotonic stats counter; never gates data visibility
                self.malformed.fetch_add(1, Ordering::Relaxed);
                return AdmitOutcome::Malformed;
            }
        };
        let shard_idx = self.shard_of(&tx.tx_id);
        let mut shard = self.shards[shard_idx].lock();
        // relaxed: TTL eviction is approximate by design; a stale seq only delays expiry, and entry-state checks keep in-flight txs safe
        let now_seq = self.seq.load(Ordering::Relaxed);
        shard.evict_expired(now_seq, self.cfg.replay_ttl);
        if shard.entries.contains_key(&tx.tx_id) {
            // relaxed: monotonic stats counter; never gates data visibility
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return AdmitOutcome::Duplicate;
        }
        // relaxed: backpressure gauge is approximate by design;
        // admission never reads queue data through these counters
        let pending = self.pending_count.load(Ordering::Relaxed);
        let ready = self.ready_count.load(Ordering::Relaxed);
        let in_flight = pending + ready;
        if in_flight >= self.cfg.max_pending {
            // relaxed: monotonic stats counter; never gates data visibility
            self.shed.fetch_add(1, Ordering::Relaxed);
            return AdmitOutcome::Shed;
        }
        // relaxed: RMW uniqueness is all that matters for id allocation; the seq value is published under the shard/pending locks
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        shard.entries.insert(tx.tx_id.clone(), EntryState::Pending);
        shard.window.push_back((seq, tx.tx_id.clone()));
        let queued = QueuedTx {
            seq,
            tx_id: tx.tx_id.clone(),
            envelope: envelope.to_vec(),
            tx,
        };
        // relaxed: approximate backpressure gauge (see admit)
        self.pending_count.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().push_back(queued);
        drop(shard);
        // relaxed: monotonic stats counter; never gates data visibility
        self.admitted.fetch_add(1, Ordering::Relaxed);
        AdmitOutcome::Admitted
    }

    /// Memoized MSP membership check (each chain validation is itself an
    /// ECDSA verify of the CA signature).
    fn creator_trusted(&self, cert: &fabric_crypto::identity::Certificate) -> bool {
        let Some(msp) = &self.msp else { return true };
        let fp = cert.fingerprint();
        if let Some(&ok) = self.cert_memo.lock().get(&fp) {
            return ok;
        }
        let ok = msp.validate(cert).is_ok();
        self.cert_memo.lock().insert(fp, ok);
        ok
    }

    /// Verifies everything currently pending with the work-stealing
    /// pool, moving valid transactions to the ready set (in admission
    /// order) and discarding invalid ones — a rejected id leaves the
    /// dedup window, so an honest resubmission with a good signature is
    /// re-admitted rather than swallowed as a duplicate.
    pub fn verify_pending(&self) -> VerifyReport {
        let batch: Vec<QueuedTx> = {
            let mut pending = self.pending.lock();
            pending.drain(..).collect()
        };
        if batch.is_empty() {
            return VerifyReport::default();
        }

        let n = batch.len();
        let workers = self.cfg.verify_workers.min(n);
        let next = AtomicUsize::new(0);
        let verdicts: Vec<OnceLock<(bool, usize)>> = (0..n).map(|_| OnceLock::new()).collect();
        let busy_us = AtomicU64::new(0);
        let wall = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let t0 = Instant::now();
                    loop {
                        // relaxed: work claim needs only RMW uniqueness; verdicts are published through OnceLock and the scope join
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let outcome = self.verify_one(&batch[i]);
                        verdicts[i].set(outcome).expect("task claimed twice");
                    }
                    // relaxed: accumulator read only after the scope join below
                    busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                });
            }
        });
        let wall_us = wall.elapsed().as_micros() as u64;

        // Sequential commit of verdicts in admission order: parallelism
        // above never reorders what the orderer will see.
        let mut report = VerifyReport {
            batch: n,
            workers,
            // relaxed: scope join above synchronizes the accumulator
            busy_us: busy_us.load(Ordering::Relaxed),
            wall_us,
            ..VerifyReport::default()
        };
        for (queued, verdict) in batch.into_iter().zip(verdicts) {
            let (valid, warmed) = verdict.into_inner().expect("verify pool missed a task");
            report.endorsements_warmed += warmed;
            let mut shard = self.shards[self.shard_of(&queued.tx_id)].lock();
            if valid {
                report.valid += 1;
                shard
                    .entries
                    .insert(queued.tx_id.clone(), EntryState::Ready);
                drop(shard);
                self.ready
                    .lock()
                    .insert(queued.seq, (queued.tx_id, queued.envelope));
                // relaxed: approximate backpressure gauge (see admit)
                self.ready_count.fetch_add(1, Ordering::Relaxed);
            } else {
                report.invalid += 1;
                // relaxed: monotonic stats counter; never gates data visibility
                self.invalid.fetch_add(1, Ordering::Relaxed);
                shard.entries.remove(&queued.tx_id);
            }
            // relaxed: approximate backpressure gauge (see admit)
            self.pending_count.fetch_sub(1, Ordering::Relaxed);
        }
        report
    }

    /// One verify task: membership, client signature through the shared
    /// cache's claim API, then (optionally) endorsement warming.
    /// Returns `(valid, endorsements_warmed)`.
    fn verify_one(&self, queued: &QueuedTx) -> (bool, usize) {
        if !self.creator_trusted(&queued.tx.creator_cert) {
            return (false, 0);
        }
        let valid = match self.cache.claim(&queued.tx.cache_key) {
            Claim::Verdict(v) => v,
            Claim::Verify(guard) => {
                // relaxed: monotonic stats counter; never gates data visibility
                self.verifications.fetch_add(1, Ordering::Relaxed);
                let ok = queued
                    .tx
                    .creator_cert
                    .public_key
                    .verify_prehashed(&queued.tx.payload_digest, &queued.tx.client_signature)
                    .is_ok();
                guard.fulfill(ok);
                ok
            }
        };
        if !valid || !self.cfg.warm_endorsements {
            return (valid, 0);
        }
        // Full decode off the admission path: warm every endorsement
        // verdict so the committer's vscc phase is lookup-only.
        let Ok(decoded) = decode_transaction(&queued.envelope) else {
            return (false, 0);
        };
        let mut warmed = 0;
        for e in &decoded.endorsements {
            let digest = sha256(&e.signed_message);
            let key = SigCacheKey::compute(&e.endorser_cert.public_key, &digest, &e.signature);
            if let Claim::Verify(guard) = self.cache.claim(&key) {
                // relaxed: monotonic stats counter; never gates data visibility
                self.verifications.fetch_add(1, Ordering::Relaxed);
                let ok = e
                    .endorser_cert
                    .public_key
                    .verify_prehashed(&digest, &e.signature)
                    .is_ok();
                guard.fulfill(ok);
                warmed += 1;
            }
        }
        (true, warmed)
    }

    /// Hands up to `max` ready transactions to the orderer, oldest
    /// admission first, and moves their dedup records into the replay
    /// window.
    pub fn drain(&self, max: usize) -> Vec<Vec<u8>> {
        let taken: Vec<(u64, String, Vec<u8>)> = {
            let mut ready = self.ready.lock();
            let keys: Vec<u64> = ready.keys().take(max).copied().collect();
            keys.into_iter()
                .map(|k| {
                    let (tx_id, env) = ready.remove(&k).expect("key just listed");
                    (k, tx_id, env)
                })
                .collect()
        };
        let mut out = Vec::with_capacity(taken.len());
        for (_, tx_id, envelope) in taken {
            self.shards[self.shard_of(&tx_id)]
                .lock()
                .entries
                .insert(tx_id, EntryState::Recorded);
            // relaxed: approximate backpressure gauge (see admit)
            self.ready_count.fetch_sub(1, Ordering::Relaxed);
            // relaxed: monotonic stats counter; never gates data visibility
            self.drained.fetch_add(1, Ordering::Relaxed);
            out.push(envelope);
        }
        out
    }

    /// Number of transactions awaiting verification.
    pub fn pending_len(&self) -> usize {
        // relaxed: approximate gauge; callers treat it as a hint
        self.pending_count.load(Ordering::Relaxed)
    }

    /// Number of verified transactions awaiting drain.
    pub fn ready_len(&self) -> usize {
        // relaxed: approximate gauge; callers treat it as a hint
        self.ready_count.load(Ordering::Relaxed)
    }

    /// The shared signature cache (for wiring a committer to it).
    pub fn cache(&self) -> Arc<SignatureCache> {
        Arc::clone(&self.cache)
    }

    /// The configuration this pool was built with.
    pub fn config(&self) -> &MempoolConfig {
        &self.cfg
    }

    /// Current counters.
    pub fn stats(&self) -> MempoolStats {
        MempoolStats {
            // relaxed: stats snapshot; counters are independent and approximate
            admitted: self.admitted.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            verifications: self.verifications.load(Ordering::Relaxed),
            pending: self.pending_count.load(Ordering::Relaxed),
            ready: self.ready_count.load(Ordering::Relaxed),
            tracked: self.shards.iter().map(|s| s.lock().entries.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::Role;
    use fabric_protos::messages::Envelope;
    use fabric_protos::txflow::{build_transaction, TxParams};

    fn test_msp() -> (
        Msp,
        fabric_crypto::identity::SigningIdentity,
        Vec<fabric_crypto::identity::SigningIdentity>,
    ) {
        let mut msp = Msp::new(2);
        let client = msp.issue(0, Role::Client, 0).unwrap();
        let e0 = msp.issue(0, Role::Peer, 0).unwrap();
        let e1 = msp.issue(1, Role::Peer, 0).unwrap();
        (msp, client, vec![e0, e1])
    }

    fn envelope(
        client: &fabric_crypto::identity::SigningIdentity,
        endorsers: &[fabric_crypto::identity::SigningIdentity],
        nonce: u8,
    ) -> Vec<u8> {
        let endorsers: Vec<_> = endorsers.iter().collect();
        build_transaction(
            client,
            &endorsers,
            &TxParams {
                channel_id: "ch",
                chaincode: "kv",
                reads: vec![],
                writes: vec![(format!("k{nonce}"), vec![nonce])],
                nonce: vec![nonce],
                timestamp: 1,
            },
        )
        .envelope
    }

    fn pool(cfg: MempoolConfig) -> Mempool {
        Mempool::new(cfg, Arc::new(SignatureCache::new(1024)))
    }

    #[test]
    fn admit_verify_drain_roundtrip() {
        let (_, client, endorsers) = test_msp();
        let mp = pool(MempoolConfig::default());
        let env = envelope(&client, &endorsers, 1);
        assert_eq!(mp.admit(&env), AdmitOutcome::Admitted);
        assert_eq!(mp.pending_len(), 1);
        let report = mp.verify_pending();
        assert_eq!(report.valid, 1);
        assert_eq!(report.invalid, 0);
        assert!(report.endorsements_warmed >= 1, "endorsements warmed");
        let drained = mp.drain(usize::MAX);
        assert_eq!(drained, vec![env]);
        assert_eq!(mp.ready_len(), 0);
    }

    #[test]
    fn duplicates_are_rejected_across_all_states() {
        let (_, client, endorsers) = test_msp();
        let mp = pool(MempoolConfig::default());
        let env = envelope(&client, &endorsers, 2);
        assert_eq!(mp.admit(&env), AdmitOutcome::Admitted);
        // Pending.
        assert_eq!(mp.admit(&env), AdmitOutcome::Duplicate);
        mp.verify_pending();
        // Ready.
        assert_eq!(mp.admit(&env), AdmitOutcome::Duplicate);
        mp.drain(usize::MAX);
        // Recorded (replay window).
        assert_eq!(mp.admit(&env), AdmitOutcome::Duplicate);
        assert_eq!(mp.stats().duplicates, 3);
    }

    #[test]
    fn malformed_envelopes_never_reach_the_queue() {
        let mp = pool(MempoolConfig::default());
        assert_eq!(mp.admit(b"not an envelope"), AdmitOutcome::Malformed);
        assert_eq!(mp.pending_len(), 0);
        assert_eq!(mp.stats().malformed, 1);
    }

    #[test]
    fn backpressure_sheds_before_ordering() {
        let (_, client, endorsers) = test_msp();
        let mp = pool(MempoolConfig {
            max_pending: 2,
            ..MempoolConfig::default()
        });
        assert_eq!(
            mp.admit(&envelope(&client, &endorsers, 1)),
            AdmitOutcome::Admitted
        );
        assert_eq!(
            mp.admit(&envelope(&client, &endorsers, 2)),
            AdmitOutcome::Admitted
        );
        let third = envelope(&client, &endorsers, 3);
        assert_eq!(mp.admit(&third), AdmitOutcome::Shed);
        let stats = mp.stats();
        assert_eq!(stats.shed, 1);
        assert!(stats.shed_rate() > 0.3);
        // Shed transactions were never tracked: once the pool drains,
        // the same envelope is admissible.
        mp.verify_pending();
        mp.drain(usize::MAX);
        assert_eq!(mp.admit(&third), AdmitOutcome::Admitted);
    }

    #[test]
    fn bad_signature_is_rejected_and_resubmission_readmitted() {
        let (_, client, endorsers) = test_msp();
        let mp = pool(MempoolConfig::default());
        let env = envelope(&client, &endorsers, 4);
        // Corrupt the client signature the way the stream generator
        // does: flip the last DER byte (still parses, fails verify).
        let mut parsed = Envelope::unmarshal(&env).unwrap();
        let last = parsed.signature.len() - 1;
        parsed.signature[last] ^= 0x01;
        let corrupt = parsed.marshal();
        assert_eq!(mp.admit(&corrupt), AdmitOutcome::Admitted);
        let report = mp.verify_pending();
        assert_eq!((report.valid, report.invalid), (0, 1));
        assert!(mp.drain(usize::MAX).is_empty());
        // The rejected id left the dedup window: the honest envelope
        // (same tx id, good signature) is admitted, not swallowed.
        assert_eq!(mp.admit(&env), AdmitOutcome::Admitted);
        assert_eq!(mp.verify_pending().valid, 1);
        assert_eq!(mp.drain(usize::MAX), vec![env]);
    }

    #[test]
    fn untrusted_creator_is_rejected_when_msp_is_enforced() {
        let (msp, _, endorsers) = test_msp();
        // CA keys are deterministic per org name, so a "foreign" 2-org
        // Msp would be identical. Instead issue the client from org 2
        // of a *wider* universe: its certificate names an org the
        // 2-org trust anchors have never heard of.
        let mut foreign = Msp::new(3);
        let foreign_client = foreign.issue(2, Role::Client, 7).unwrap();
        let env = envelope(&foreign_client, &endorsers, 5);
        let mp = Mempool::with_msp(
            MempoolConfig::default(),
            Arc::new(SignatureCache::new(1024)),
            Some(msp),
        );
        assert_eq!(mp.admit(&env), AdmitOutcome::Admitted);
        let report = mp.verify_pending();
        assert_eq!((report.valid, report.invalid), (0, 1));
        assert_eq!(
            mp.stats().verifications,
            0,
            "no verify wasted on untrusted certs"
        );
    }

    #[test]
    fn replay_window_ttl_evicts_oldest_recorded_first() {
        let (_, client, endorsers) = test_msp();
        let mp = pool(MempoolConfig {
            replay_ttl: 2,
            ..MempoolConfig::default()
        });
        let a = envelope(&client, &endorsers, 10);
        assert_eq!(mp.admit(&a), AdmitOutcome::Admitted); // seq 0
        mp.verify_pending();
        mp.drain(usize::MAX); // `a` now Recorded
        assert_eq!(
            mp.admit(&envelope(&client, &endorsers, 11)),
            AdmitOutcome::Admitted
        ); // seq 1
        assert_eq!(mp.admit(&a), AdmitOutcome::Duplicate, "inside the window");
        assert_eq!(
            mp.admit(&envelope(&client, &endorsers, 12)),
            AdmitOutcome::Admitted
        ); // seq 2
           // Two further transactions (ttl = 2) were admitted after `a`,
           // so its window closed: the replay is re-admitted (documented
           // TTL semantics — the window is a bounded filter, not a ledger).
        assert_eq!(mp.admit(&a), AdmitOutcome::Admitted);
        let stats = mp.stats();
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.admitted, 4);
    }

    #[test]
    fn duplicates_never_evict_younger_entries() {
        let (_, client, endorsers) = test_msp();
        let mp = pool(MempoolConfig {
            replay_ttl: 3,
            ..MempoolConfig::default()
        });
        let a = envelope(&client, &endorsers, 20);
        let b = envelope(&client, &endorsers, 21);
        assert_eq!(mp.admit(&a), AdmitOutcome::Admitted);
        assert_eq!(mp.admit(&b), AdmitOutcome::Admitted);
        // Hammer duplicates of the *older* transaction: none of them
        // may advance the sequence or push the younger `b` out.
        for _ in 0..50 {
            assert_eq!(mp.admit(&a), AdmitOutcome::Duplicate);
        }
        assert_eq!(mp.admit(&b), AdmitOutcome::Duplicate, "b still tracked");
        let report = mp.verify_pending();
        assert_eq!(report.valid, 2, "both distinct transactions survive");
        assert_eq!(mp.drain(usize::MAX).len(), 2);
    }

    #[test]
    fn drain_preserves_admission_order_across_worker_counts() {
        let (_, client, endorsers) = test_msp();
        let envs: Vec<Vec<u8>> = (0..12).map(|i| envelope(&client, &endorsers, i)).collect();
        let mut drains = Vec::new();
        for workers in [1, 4] {
            let mp = pool(MempoolConfig {
                verify_workers: workers,
                ..MempoolConfig::default()
            });
            for env in &envs {
                assert_eq!(mp.admit(env), AdmitOutcome::Admitted);
            }
            mp.verify_pending();
            drains.push(mp.drain(usize::MAX));
        }
        assert_eq!(drains[0], envs, "drain order == admission order");
        assert_eq!(drains[0], drains[1], "worker count changes nothing");
    }

    #[test]
    fn admission_verdicts_are_committer_cache_hits() {
        let (_, client, endorsers) = test_msp();
        let cache = Arc::new(SignatureCache::new(1024));
        let mp = Mempool::new(MempoolConfig::default(), Arc::clone(&cache));
        let env = envelope(&client, &endorsers, 30);
        mp.admit(&env);
        mp.verify_pending();
        let after_pool = cache.stats();
        assert!(after_pool.misses >= 3, "client + 2 endorsements claimed");
        // A committer-side lookup of the client-signature verdict hits.
        let tx = decode_admission(&env).unwrap();
        assert_eq!(cache.get(&tx.cache_key), Some(true));
    }

    #[test]
    fn partial_drain_respects_max() {
        let (_, client, endorsers) = test_msp();
        let mp = pool(MempoolConfig::default());
        for i in 0..5 {
            mp.admit(&envelope(&client, &endorsers, 40 + i));
        }
        mp.verify_pending();
        assert_eq!(mp.drain(2).len(), 2);
        assert_eq!(mp.ready_len(), 3);
        assert_eq!(mp.drain(usize::MAX).len(), 3);
        assert_eq!(mp.stats().drained, 5);
    }
}
