//! Light admission-time decode of a transaction envelope.
//!
//! Admission needs exactly four facts about a submitted envelope: its
//! transaction id (for dedup), the creator certificate and client
//! signature (for the verify pool), and the signed payload digest (the
//! signature-cache key). The full recursive unmarshal — actions,
//! proposal response, read/write sets, endorsements — is deferred to
//! the verify workers, keeping the admission hot path to three protobuf
//! layers and one SHA-256.

use fabric_crypto::identity::Certificate;
use fabric_crypto::{sha256, Signature};
use fabric_peer::SigCacheKey;
use fabric_protos::messages::{
    ChannelHeader, Envelope, Payload, SerializedIdentity, SignatureHeader,
};
use fabric_protos::wire::WireError;

/// The admission-relevant slice of a transaction envelope.
#[derive(Debug, Clone)]
pub struct AdmissionTx {
    /// Hex transaction id from the channel header.
    pub tx_id: String,
    /// The submitting client's certificate.
    pub creator_cert: Certificate,
    /// The client signature over the envelope payload.
    pub client_signature: Signature,
    /// `sha256(envelope.payload)` — the digest the client signed, and
    /// exactly what the committer's verify stage digests for the same
    /// check (so the cache key below matches its lookup).
    pub payload_digest: [u8; 32],
    /// Shared signature-cache key for the client-signature verdict.
    pub cache_key: SigCacheKey,
}

/// Decodes just the admission-relevant layers of an envelope.
///
/// # Errors
///
/// [`WireError`] when any of the envelope, payload, headers, creator
/// identity, certificate, or DER signature fail to parse — the caller
/// rejects such submissions as malformed without burning a verify.
pub fn decode_admission(envelope_bytes: &[u8]) -> Result<AdmissionTx, WireError> {
    let envelope = Envelope::unmarshal(envelope_bytes)?;
    let payload = Payload::unmarshal(&envelope.payload)?;
    let ch = ChannelHeader::unmarshal(&payload.header.channel_header)?;
    if ch.tx_id.is_empty() {
        return Err(WireError::Semantic("empty tx id"));
    }
    let sig_header = SignatureHeader::unmarshal(&payload.header.signature_header)?;
    let creator = SerializedIdentity::unmarshal(&sig_header.creator)?;
    let creator_cert = Certificate::from_bytes(&creator.id_bytes)
        .map_err(|_| WireError::Semantic("bad creator certificate"))?;
    let client_signature = fabric_crypto::der::decode_signature(&envelope.signature)
        .map_err(|_| WireError::Semantic("bad client signature DER"))?;
    let payload_digest = sha256(&envelope.payload);
    let cache_key =
        SigCacheKey::compute(&creator_cert.public_key, &payload_digest, &client_signature);
    Ok(AdmissionTx {
        tx_id: ch.tx_id,
        creator_cert,
        client_signature,
        payload_digest,
        cache_key,
    })
}
