//! Blockchain Machine: the hardware-accelerated Fabric validator peer.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrates: the [`BMacPeer`] receives blocks from the orderer through
//! the BMac protocol ([`bmac_protocol`]), validates them on the simulated
//! network-attached FPGA ([`bmac_hw`]), reads the result with the
//! `GetBlockData()` host API, and commits blocks to the ledger exactly
//! like a software-only peer — while remaining compatible with Gossip
//! senders via a full software fallback ([`fabric_peer`]).
//!
//! Configuration follows the paper's YAML file (§3.5): organizations,
//! chaincode endorsement policies (compiled into hardware circuits), and
//! the architecture geometry (`tx_validators` × `engines_per_vscc`).
//!
//! # Example
//!
//! ```
//! use bmac_core::{BMacPeer, BmacConfig};
//! use bmac_protocol::BmacSender;
//! use fabric_crypto::identity::{Msp, Role};
//! use fabric_node::chaincode::KvChaincode;
//! use fabric_node::network::FabricNetworkBuilder;
//! use fabric_policy::parse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A Fabric network producing blocks…
//! let mut net = FabricNetworkBuilder::new()
//!     .orgs(2)
//!     .block_size(1)
//!     .chaincode("kv", parse("2-outof-2 orgs")?)
//!     .build();
//! net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
//! let block = net
//!     .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])?
//!     .remove(0);
//!
//! // …and a BMac peer validating them in hardware.
//! let config = BmacConfig::from_yaml(
//!     "network:\n  orgs: 2\nchaincodes:\n  - name: kv\n    policy: 2-outof-2 orgs\n",
//! )?;
//! let mut msp = Msp::new(2);
//! msp.issue(0, Role::Orderer, 0)?;
//! let mut peer = BMacPeer::new(&config, msp);
//! let mut sender = BmacSender::new();
//! let mut committed = Vec::new();
//! for packet in sender.send_block(&block)? {
//!     committed.extend(peer.ingest_wire(&packet.encode()?, 0)?);
//! }
//! assert_eq!(committed.len(), 1);
//! assert!(committed[0].block_valid);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod peer;

pub use config::{BmacConfig, ChaincodeConfig, ConfigError};
pub use peer::{BMacPeer, CommitRecord, PeerError};
