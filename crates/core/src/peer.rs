//! The BMac peer: hardware-accelerated validator (paper Figure 4b).
//!
//! The peer couples the simulated FPGA card ([`BMacMachine`]) with the
//! Fabric software side: blocks arrive as BMac packets, the hardware
//! validates them, and the software reads the result with
//! `GetBlockData()` "right before the ledger commit operation" (§3.5),
//! commits the block to the disk ledger and mirrors the valid write sets
//! into its own queryable state database. When a block arrives through
//! Gossip instead (a software-only sender), the peer falls back to the
//! full software validation pipeline — the compatibility goal of §1.

use std::collections::HashMap;

use bmac_hw::processor::HwBlockStats;
use bmac_hw::{BMacMachine, MachineError, ProcessorConfig};
use fabric_crypto::Msp;
use fabric_ledger::{Ledger, LedgerError, TxValidationCode};
use fabric_peer::pipeline::{ValidateError, ValidatorPipeline};
use fabric_protos::messages::Block;
use fabric_sim::SimTime;
use fabric_statedb::{Height, StateDb, WriteBatch};

use crate::config::BmacConfig;

/// Outcome of committing one block on the BMac peer.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// Block number.
    pub block_num: u64,
    /// Whether the orderer signature verified.
    pub block_valid: bool,
    /// Per-transaction validation flags.
    pub flags: Vec<TxValidationCode>,
    /// Running commit hash after the block.
    pub commit_hash: [u8; 32],
    /// Hardware timing statistics (`None` for the Gossip fallback path).
    pub hw_stats: Option<HwBlockStats>,
}

impl CommitRecord {
    /// Number of valid transactions.
    pub fn valid_count(&self) -> usize {
        self.flags.iter().filter(|f| f.is_valid()).count()
    }
}

/// Errors from the BMac peer.
#[derive(Debug)]
pub enum PeerError {
    /// Hardware machine error.
    Machine(MachineError),
    /// Ledger commit failure.
    Ledger(LedgerError),
    /// Software fallback validation failure.
    Fallback(ValidateError),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Machine(e) => write!(f, "hardware: {e}"),
            PeerError::Ledger(e) => write!(f, "ledger: {e}"),
            PeerError::Fallback(e) => write!(f, "software fallback: {e}"),
        }
    }
}

impl std::error::Error for PeerError {}

/// The hardware-accelerated validator peer.
#[derive(Debug)]
pub struct BMacPeer {
    machine: BMacMachine,
    ledger: Ledger,
    state_db: StateDb,
    fallback: ValidatorPipeline,
    commits: Vec<CommitRecord>,
}

impl BMacPeer {
    /// Builds a peer from a [`BmacConfig`] and the network MSP (for the
    /// Gossip-fallback software validation and optional hardware trust
    /// anchors).
    pub fn new(config: &BmacConfig, msp: Msp) -> Self {
        let processor_config = ProcessorConfig {
            geometry: config.geometry(),
            short_circuit: config.short_circuit,
            early_abort: config.early_abort,
            db_capacity: config.db_capacity,
            num_orgs: config.orgs as usize,
        };
        let policies: HashMap<String, fabric_policy::Policy> = config.policy_map();
        let machine = BMacMachine::new(processor_config, &policies);
        // The BMac peer VM runs with 4 vCPUs in the paper — its software
        // only commits blocks; fallback validation uses those vCPUs.
        let fallback = ValidatorPipeline::new(msp, policies, 4);
        let ledger = fallback.ledger();
        let state_db = fallback.state_db();
        BMacPeer {
            machine,
            ledger,
            state_db,
            fallback,
            commits: Vec::new(),
        }
    }

    /// The peer's ledger.
    pub fn ledger(&self) -> Ledger {
        self.ledger.clone()
    }

    /// The peer's (software-visible) state database.
    pub fn state_db(&self) -> StateDb {
        self.state_db.clone()
    }

    /// The underlying machine (for traffic statistics).
    pub fn machine(&self) -> &BMacMachine {
        &self.machine
    }

    /// Ingests one wire packet at `arrival` (simulated time), then
    /// commits any block whose hardware result became available.
    ///
    /// # Errors
    ///
    /// [`PeerError`] on hardware or ledger failures.
    pub fn ingest_wire(
        &mut self,
        wire: &[u8],
        arrival: SimTime,
    ) -> Result<Vec<CommitRecord>, PeerError> {
        self.machine
            .ingest_wire(wire, arrival)
            .map_err(PeerError::Machine)?;
        self.drain_hw_results()
    }

    /// Gossip fallback: a block arriving from a software-only sender is
    /// validated entirely in software (compatibility path, §3.2).
    ///
    /// # Errors
    ///
    /// [`PeerError::Fallback`] when software validation fails
    /// structurally.
    pub fn receive_gossip_block(&mut self, block: &Block) -> Result<CommitRecord, PeerError> {
        let result = self
            .fallback
            .validate_and_commit(block)
            .map_err(PeerError::Fallback)?;
        let record = CommitRecord {
            block_num: result.block_num,
            block_valid: result.block_valid,
            flags: result.codes,
            commit_hash: result.commit_hash,
            hw_stats: None,
        };
        self.commits.push(record.clone());
        Ok(record)
    }

    /// All commits so far.
    pub fn commits(&self) -> &[CommitRecord] {
        &self.commits
    }

    /// `GetBlockData()` + ledger commit for every pending hardware
    /// result (the software side of Figure 4b).
    fn drain_hw_results(&mut self) -> Result<Vec<CommitRecord>, PeerError> {
        let mut out = Vec::new();
        while let Some((result, received)) = self.machine.get_block_data_full() {
            let tx_ids: Vec<String> = received.txs.iter().map(|t| t.tx_id.clone()).collect();
            let modified: Vec<Vec<String>> = received
                .txs
                .iter()
                .map(|t| t.writes.iter().map(|(k, _)| k.clone()).collect())
                .collect();
            let committed = self
                .ledger
                .commit_block(
                    received.block.clone(),
                    &tx_ids,
                    result.flags.clone(),
                    &modified,
                )
                .map_err(PeerError::Ledger)?;
            // Mirror valid write sets into the software-visible state DB
            // so queries and the Gossip fallback stay consistent with the
            // in-hardware database.
            for (i, tx) in received.txs.iter().enumerate() {
                if !result.flags[i].is_valid() {
                    continue;
                }
                let mut batch = WriteBatch::new();
                for (k, v) in &tx.writes {
                    batch.put(k.clone(), v.clone());
                }
                self.state_db
                    .apply(&batch, Height::new(result.block_num, i as u64));
            }
            let record = CommitRecord {
                block_num: result.block_num,
                block_valid: result.block_valid,
                flags: result.flags,
                commit_hash: committed.commit_hash,
                hw_stats: Some(result.stats),
            };
            self.commits.push(record.clone());
            out.push(record);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmac_protocol::BmacSender;
    use fabric_crypto::identity::Role;
    use fabric_node::chaincode::KvChaincode;
    use fabric_node::network::FabricNetworkBuilder;
    use fabric_policy::parse;

    fn test_config() -> BmacConfig {
        BmacConfig::from_yaml(
            "network:\n  orgs: 2\nchaincodes:\n  - name: kv\n    policy: 2-outof-2 orgs\narchitecture:\n  tx_validators: 4\n  engines_per_vscc: 2\n",
        )
        .unwrap()
    }

    fn test_msp() -> Msp {
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        msp
    }

    fn make_network() -> fabric_node::FabricNetwork {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(3)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        net
    }

    #[test]
    fn hardware_path_commits_blocks() {
        let mut net = make_network();
        let mut peer = BMacPeer::new(&test_config(), test_msp());
        let mut sender = BmacSender::new();
        net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        net.submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
            .unwrap();
        let blocks = net
            .submit_invocation(0, "kv", "put", &["c".into(), "3".into()])
            .unwrap();
        let mut records = Vec::new();
        for p in sender.send_block(&blocks[0]).unwrap() {
            records.extend(peer.ingest_wire(&p.encode().unwrap(), 0).unwrap());
        }
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert!(r.block_valid);
        assert_eq!(r.valid_count(), 3);
        assert!(r.hw_stats.is_some());
        assert_eq!(peer.ledger().height(), 1);
        assert_eq!(peer.state_db().get("a").unwrap().value, b"1");
    }

    #[test]
    fn hw_and_sw_peers_agree_on_flags_and_commit_hash() {
        // The §4.1 equivalence check: same blocks through both peers.
        let mut net = make_network();
        let mut bmac = BMacPeer::new(&test_config(), test_msp());
        let sw = ValidatorPipeline::new(
            test_msp(),
            [("kv".to_string(), parse("2-outof-2 orgs").unwrap())]
                .into_iter()
                .collect(),
            4,
        );
        let mut sender = BmacSender::new();
        for round in 0..3 {
            let mut blocks = Vec::new();
            let mut i = 0;
            while blocks.is_empty() {
                blocks = net
                    .submit_invocation(
                        0,
                        "kv",
                        "put",
                        &[format!("k{round}_{i}"), format!("{round}")],
                    )
                    .unwrap();
                i += 1;
            }
            let block = blocks.remove(0);
            let sw_result = sw.validate_and_commit(&block).unwrap();
            let mut hw_records = Vec::new();
            for p in sender.send_block(&block).unwrap() {
                hw_records.extend(bmac.ingest_wire(&p.encode().unwrap(), 0).unwrap());
            }
            let hw = &hw_records[0];
            assert_eq!(hw.flags, sw_result.codes, "round {round} flags");
            assert_eq!(hw.commit_hash, sw_result.commit_hash, "round {round} hash");
        }
    }

    #[test]
    fn gossip_fallback_works() {
        let mut net = make_network();
        let mut peer = BMacPeer::new(&test_config(), test_msp());
        net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        net.submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
            .unwrap();
        let blocks = net
            .submit_invocation(0, "kv", "put", &["c".into(), "3".into()])
            .unwrap();
        let record = peer.receive_gossip_block(&blocks[0]).unwrap();
        assert!(record.block_valid);
        assert!(record.hw_stats.is_none());
        assert_eq!(peer.ledger().height(), 1);
    }

    #[test]
    fn mixed_hw_and_gossip_blocks_chain() {
        let mut net = make_network();
        let mut peer = BMacPeer::new(&test_config(), test_msp());
        let mut sender = BmacSender::new();
        // Block 0 via hardware.
        net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        net.submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
            .unwrap();
        let b0 = net
            .submit_invocation(0, "kv", "put", &["c".into(), "3".into()])
            .unwrap()
            .remove(0);
        for p in sender.send_block(&b0).unwrap() {
            peer.ingest_wire(&p.encode().unwrap(), 0).unwrap();
        }
        // Block 1 via gossip fallback.
        net.commit_to_endorsers(
            0,
            &[
                (0, vec![("a".into(), b"1".to_vec())]),
                (1, vec![("b".into(), b"2".to_vec())]),
                (2, vec![("c".into(), b"3".to_vec())]),
            ],
        );
        net.submit_invocation(0, "kv", "put", &["d".into(), "4".into()])
            .unwrap();
        net.submit_invocation(0, "kv", "put", &["e".into(), "5".into()])
            .unwrap();
        let b1 = net
            .submit_invocation(0, "kv", "put", &["f".into(), "6".into()])
            .unwrap()
            .remove(0);
        let record = peer.receive_gossip_block(&b1).unwrap();
        assert_eq!(record.block_num, 1);
        assert_eq!(record.valid_count(), 3);
        assert_eq!(peer.ledger().height(), 2);
        assert!(peer.ledger().verify_chain().is_ok());
    }

    #[test]
    fn hardware_stats_reflect_short_circuit() {
        let mut net = make_network();
        let mut peer = BMacPeer::new(&test_config(), test_msp());
        let mut sender = BmacSender::new();
        net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap();
        net.submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
            .unwrap();
        let block = net
            .submit_invocation(0, "kv", "put", &["c".into(), "3".into()])
            .unwrap()
            .remove(0);
        let mut records = Vec::new();
        for p in sender.send_block(&block).unwrap() {
            records.extend(peer.ingest_wire(&p.encode().unwrap(), 0).unwrap());
        }
        let stats = records[0].hw_stats.unwrap();
        // 2of2: both endorsements needed, none skipped.
        assert_eq!(stats.skipped_verifications, 0);
        // 1 block + 3 × (1 client + 2 endorsements) = 10 verifications.
        assert_eq!(stats.verifications, 10);
        assert!(stats.latency() > 0);
    }
}
