//! The BMac YAML configuration file (paper §3.5).
//!
//! "A YAML based configuration file is used to define both static and
//! configurable parameters of BMac. For example, it contains identity
//! information (certificates, roles, etc.) of various nodes of the
//! Fabric network, and chaincode endorsement policies." A script parses
//! it to generate encoded ids and the `ends_policy_evaluator`.
//!
//! This module implements a YAML *subset* parser (nested maps by 2-space
//! indentation, `- ` list items, string/int/bool scalars, `#` comments)
//! sufficient for the configuration schema, with no external
//! dependencies:
//!
//! ```yaml
//! network:
//!   orgs: 2
//!   channel: mychannel
//!   endorsers_per_org: 1
//! chaincodes:
//!   - name: smallbank
//!     policy: 2-outof-2 orgs
//! architecture:
//!   tx_validators: 8
//!   engines_per_vscc: 2
//!   db_capacity: 8192
//!   short_circuit: true
//!   early_abort: true
//! ```

use std::collections::BTreeMap;
use std::fmt;

use fabric_policy::{parse as parse_policy, Policy};

/// A parsed YAML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Scalar (kept as the raw string; typed accessors convert).
    Scalar(String),
    /// Mapping with insertion-ordered keys.
    Map(BTreeMap<String, Value>),
    /// Sequence.
    List(Vec<Value>),
}

impl Value {
    /// The value as a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_str()?.parse().ok()
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self.as_str()? {
            "true" | "yes" | "on" => Some(true),
            "false" | "no" | "off" => Some(false),
            _ => None,
        }
    }

    /// Map lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// List items.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::List(v) => v,
            _ => &[],
        }
    }
}

/// Errors from parsing the configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// YAML-subset syntax problem.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A required key is missing.
    Missing(&'static str),
    /// A value failed typed conversion.
    BadValue(&'static str, String),
    /// An endorsement policy failed to parse.
    BadPolicy(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { line, message } => {
                write!(f, "config syntax error on line {line}: {message}")
            }
            ConfigError::Missing(key) => write!(f, "missing required config key: {key}"),
            ConfigError::BadValue(key, got) => {
                write!(f, "invalid value for {key}: {got:?}")
            }
            ConfigError::BadPolicy(e) => write!(f, "invalid endorsement policy: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parses the YAML subset into a [`Value`] tree.
///
/// # Errors
///
/// [`ConfigError::Syntax`] with the offending line.
pub fn parse_yaml(input: &str) -> Result<Value, ConfigError> {
    // Tokenize into (indent, content, line_no), dropping blanks/comments.
    let mut lines = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if without_comment.trim().is_empty() {
            continue;
        }
        let indent = without_comment.len() - without_comment.trim_start().len();
        if indent % 2 != 0 {
            return Err(ConfigError::Syntax {
                line: i + 1,
                message: "indentation must be multiples of two spaces".into(),
            });
        }
        lines.push((indent, without_comment.trim().to_string(), i + 1));
    }
    let mut pos = 0;
    let v = parse_block(&lines, &mut pos, 0)?;
    if pos != lines.len() {
        return Err(ConfigError::Syntax {
            line: lines[pos].2,
            message: "unexpected dedent/content".into(),
        });
    }
    Ok(v)
}

fn parse_block(
    lines: &[(usize, String, usize)],
    pos: &mut usize,
    indent: usize,
) -> Result<Value, ConfigError> {
    if *pos >= lines.len() {
        return Ok(Value::Map(BTreeMap::new()));
    }
    let is_list = lines[*pos].1.starts_with("- ") || lines[*pos].1 == "-";
    if is_list {
        let mut out = Vec::new();
        while *pos < lines.len() && lines[*pos].0 == indent && lines[*pos].1.starts_with('-') {
            let (_, content, line_no) = &lines[*pos];
            let rest = content[1..].trim().to_string();
            *pos += 1;
            if rest.is_empty() {
                // Nested structure under the dash.
                out.push(parse_block(lines, pos, indent + 2)?);
            } else if let Some((k, v)) = split_kv(&rest) {
                // Inline first key of a map item: `- name: smallbank`.
                let mut map = BTreeMap::new();
                if v.is_empty() {
                    let nested = parse_block(lines, pos, indent + 4)?;
                    map.insert(k.to_string(), nested);
                } else {
                    map.insert(k.to_string(), Value::Scalar(v.to_string()));
                }
                // Continuation keys at indent+2.
                while *pos < lines.len()
                    && lines[*pos].0 == indent + 2
                    && !lines[*pos].1.starts_with('-')
                {
                    let (_, content, line_no) = &lines[*pos];
                    let Some((k, v)) = split_kv(content) else {
                        return Err(ConfigError::Syntax {
                            line: *line_no,
                            message: "expected key: value".into(),
                        });
                    };
                    *pos += 1;
                    if v.is_empty() {
                        let nested = parse_block(lines, pos, indent + 4)?;
                        map.insert(k.to_string(), nested);
                    } else {
                        map.insert(k.to_string(), Value::Scalar(v.to_string()));
                    }
                }
                out.push(Value::Map(map));
            } else {
                let _ = line_no;
                out.push(Value::Scalar(rest));
            }
        }
        return Ok(Value::List(out));
    }
    let mut map = BTreeMap::new();
    while *pos < lines.len() && lines[*pos].0 == indent {
        let (_, content, line_no) = &lines[*pos];
        if content.starts_with('-') {
            break;
        }
        let Some((k, v)) = split_kv(content) else {
            return Err(ConfigError::Syntax {
                line: *line_no,
                message: "expected key: value".into(),
            });
        };
        *pos += 1;
        if v.is_empty() {
            let nested = parse_block(lines, pos, indent + 2)?;
            map.insert(k.to_string(), nested);
        } else {
            map.insert(k.to_string(), Value::Scalar(v.to_string()));
        }
    }
    Ok(Value::Map(map))
}

fn split_kv(s: &str) -> Option<(&str, &str)> {
    let idx = s.find(':')?;
    let (k, v) = s.split_at(idx);
    Some((k.trim(), v[1..].trim()))
}

/// A chaincode entry: name + endorsement policy.
#[derive(Debug, Clone)]
pub struct ChaincodeConfig {
    /// Chaincode name.
    pub name: String,
    /// Parsed endorsement policy.
    pub policy: Policy,
}

/// The complete BMac configuration.
#[derive(Debug, Clone)]
pub struct BmacConfig {
    /// Number of organizations.
    pub orgs: u8,
    /// Channel name.
    pub channel: String,
    /// Endorser peers per organization.
    pub endorsers_per_org: u8,
    /// Chaincodes with their policies.
    pub chaincodes: Vec<ChaincodeConfig>,
    /// tx_validator instances.
    pub tx_validators: usize,
    /// ecdsa_engines per tx_vscc.
    pub engines_per_vscc: usize,
    /// In-hardware database capacity.
    pub db_capacity: usize,
    /// Short-circuit policy evaluation.
    pub short_circuit: bool,
    /// Early-abort pipeline conditions.
    pub early_abort: bool,
    /// Maximum transactions per block supported by the architecture.
    pub max_block_txs: usize,
}

impl Default for BmacConfig {
    fn default() -> Self {
        BmacConfig {
            orgs: 2,
            channel: "mychannel".into(),
            endorsers_per_org: 1,
            chaincodes: Vec::new(),
            tx_validators: 8,
            engines_per_vscc: 2,
            db_capacity: 8192,
            short_circuit: true,
            early_abort: true,
            max_block_txs: 256,
        }
    }
}

impl BmacConfig {
    /// Parses the configuration from YAML-subset text.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for syntax problems, missing keys, or malformed
    /// policies.
    pub fn from_yaml(input: &str) -> Result<Self, ConfigError> {
        let root = parse_yaml(input)?;
        let mut config = BmacConfig::default();
        if let Some(network) = root.get("network") {
            if let Some(v) = network.get("orgs") {
                config.orgs = v
                    .as_u64()
                    .ok_or_else(|| ConfigError::BadValue("network.orgs", format!("{v:?}")))?
                    as u8;
            }
            if let Some(v) = network.get("channel") {
                config.channel = v
                    .as_str()
                    .ok_or_else(|| ConfigError::BadValue("network.channel", format!("{v:?}")))?
                    .to_string();
            }
            if let Some(v) = network.get("endorsers_per_org") {
                config.endorsers_per_org = v.as_u64().ok_or_else(|| {
                    ConfigError::BadValue("network.endorsers_per_org", format!("{v:?}"))
                })? as u8;
            }
        }
        if let Some(ccs) = root.get("chaincodes") {
            for item in ccs.items() {
                let name = item
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or(ConfigError::Missing("chaincodes[].name"))?
                    .to_string();
                let policy_str = item
                    .get("policy")
                    .and_then(Value::as_str)
                    .ok_or(ConfigError::Missing("chaincodes[].policy"))?;
                let policy =
                    parse_policy(policy_str).map_err(|e| ConfigError::BadPolicy(e.to_string()))?;
                config.chaincodes.push(ChaincodeConfig { name, policy });
            }
        }
        if let Some(arch) = root.get("architecture") {
            if let Some(v) = arch.get("tx_validators") {
                config.tx_validators = v.as_u64().ok_or_else(|| {
                    ConfigError::BadValue("architecture.tx_validators", format!("{v:?}"))
                })? as usize;
            }
            if let Some(v) = arch.get("engines_per_vscc") {
                config.engines_per_vscc = v.as_u64().ok_or_else(|| {
                    ConfigError::BadValue("architecture.engines_per_vscc", format!("{v:?}"))
                })? as usize;
            }
            if let Some(v) = arch.get("db_capacity") {
                config.db_capacity = v.as_u64().ok_or_else(|| {
                    ConfigError::BadValue("architecture.db_capacity", format!("{v:?}"))
                })? as usize;
            }
            if let Some(v) = arch.get("short_circuit") {
                config.short_circuit = v.as_bool().ok_or_else(|| {
                    ConfigError::BadValue("architecture.short_circuit", format!("{v:?}"))
                })?;
            }
            if let Some(v) = arch.get("early_abort") {
                config.early_abort = v.as_bool().ok_or_else(|| {
                    ConfigError::BadValue("architecture.early_abort", format!("{v:?}"))
                })?;
            }
            if let Some(v) = arch.get("max_block_txs") {
                config.max_block_txs = v.as_u64().ok_or_else(|| {
                    ConfigError::BadValue("architecture.max_block_txs", format!("{v:?}"))
                })? as usize;
            }
        }
        Ok(config)
    }

    /// The architecture geometry.
    pub fn geometry(&self) -> bmac_hw::Geometry {
        bmac_hw::Geometry::new(self.tx_validators, self.engines_per_vscc)
    }

    /// Policies as a name → policy map.
    pub fn policy_map(&self) -> std::collections::HashMap<String, Policy> {
        self.chaincodes
            .iter()
            .map(|c| (c.name.clone(), c.policy.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Blockchain Machine configuration
network:
  orgs: 4
  channel: paperchannel
  endorsers_per_org: 1
chaincodes:
  - name: smallbank
    policy: 2-outof-2 orgs
  - name: drm
    policy: (Org1 & Org2) | (Org3 & Org4)
architecture:
  tx_validators: 16
  engines_per_vscc: 2
  db_capacity: 8192
  short_circuit: true
  early_abort: true
";

    #[test]
    fn parses_full_sample() {
        let c = BmacConfig::from_yaml(SAMPLE).unwrap();
        assert_eq!(c.orgs, 4);
        assert_eq!(c.channel, "paperchannel");
        assert_eq!(c.chaincodes.len(), 2);
        assert_eq!(c.chaincodes[0].name, "smallbank");
        assert_eq!(c.tx_validators, 16);
        assert!(c.short_circuit);
        assert_eq!(c.geometry().to_string(), "16x2");
    }

    #[test]
    fn defaults_apply_for_missing_sections() {
        let c = BmacConfig::from_yaml("network:\n  orgs: 3\n").unwrap();
        assert_eq!(c.orgs, 3);
        assert_eq!(c.tx_validators, 8);
        assert_eq!(c.db_capacity, 8192);
    }

    #[test]
    fn bad_policy_is_reported() {
        let err =
            BmacConfig::from_yaml("chaincodes:\n  - name: x\n    policy: 5of3\n").unwrap_err();
        assert!(matches!(err, ConfigError::BadPolicy(_)));
    }

    #[test]
    fn missing_policy_is_reported() {
        let err = BmacConfig::from_yaml("chaincodes:\n  - name: x\n").unwrap_err();
        assert_eq!(err, ConfigError::Missing("chaincodes[].policy"));
    }

    #[test]
    fn bad_scalar_type_is_reported() {
        let err = BmacConfig::from_yaml("architecture:\n  tx_validators: many\n").unwrap_err();
        assert!(matches!(
            err,
            ConfigError::BadValue("architecture.tx_validators", _)
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = BmacConfig::from_yaml("# hi\n\nnetwork:\n  orgs: 2 # two orgs\n").unwrap();
        assert_eq!(c.orgs, 2);
    }

    #[test]
    fn odd_indentation_rejected() {
        let err = parse_yaml("a:\n   b: 1\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { .. }));
    }

    #[test]
    fn yaml_value_accessors() {
        let v = parse_yaml("a: 5\nb: true\nc: hello\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("c").unwrap().as_str(), Some("hello"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn scalar_lists() {
        let v = parse_yaml("items:\n  - a\n  - b\n").unwrap();
        let items = v.get("items").unwrap().items();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_str(), Some("a"));
    }
}
