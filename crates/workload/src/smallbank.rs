//! The smallbank benchmark chaincode (Hyperledger Caliper benchmarks).
//!
//! "The smallbank application implements typical functions of a banking
//! application" (paper §4.2). Six operations over per-customer checking
//! and savings balances, plus the paper's split-payment extension
//! ("we modified smallbank application to include the functionality of
//! split payment to n accounts, resulting in variable number of database
//! reads and writes", §4.3 / Figure 12c).

use fabric_node::chaincode::{parse_balance, Chaincode, ChaincodeError, SimulationResult};
use fabric_statedb::StateDb;

/// The smallbank chaincode.
#[derive(Debug, Default)]
pub struct Smallbank;

/// Key of a customer's checking balance.
pub fn checking_key(customer: &str) -> String {
    format!("{customer}_checking")
}

/// Key of a customer's savings balance.
pub fn savings_key(customer: &str) -> String {
    format!("{customer}_savings")
}

impl Smallbank {
    /// Creates the chaincode.
    pub fn new() -> Self {
        Smallbank
    }

    fn read(db: &StateDb, key: &str, result: &mut SimulationResult) -> u64 {
        let val = db.get(key);
        let balance = parse_balance(val.as_ref().map(|v| v.value.as_slice()));
        result.reads.push((key.to_string(), val.map(|v| v.version)));
        balance
    }

    fn write(key: String, amount: u64, result: &mut SimulationResult) {
        result.writes.push((key, amount.to_string().into_bytes()));
    }
}

impl Chaincode for Smallbank {
    fn name(&self) -> &str {
        "smallbank"
    }

    fn execute(
        &self,
        function: &str,
        args: &[String],
        db: &StateDb,
    ) -> Result<SimulationResult, ChaincodeError> {
        let mut result = SimulationResult::default();
        match function {
            // create_account(customer, checking, savings)
            "create_account" => {
                let [customer, checking, savings] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "create_account customer checking savings".into(),
                    ));
                };
                let c: u64 = parse_amount(checking)?;
                let s: u64 = parse_amount(savings)?;
                Self::write(checking_key(customer), c, &mut result);
                Self::write(savings_key(customer), s, &mut result);
            }
            // transact_savings(customer, amount): savings += amount
            "transact_savings" => {
                let [customer, amount] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "transact_savings customer amount".into(),
                    ));
                };
                let amount = parse_amount(amount)?;
                let bal = Self::read(db, &savings_key(customer), &mut result);
                Self::write(savings_key(customer), bal + amount, &mut result);
            }
            // deposit_checking(customer, amount): checking += amount
            "deposit_checking" => {
                let [customer, amount] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "deposit_checking customer amount".into(),
                    ));
                };
                let amount = parse_amount(amount)?;
                let bal = Self::read(db, &checking_key(customer), &mut result);
                Self::write(checking_key(customer), bal + amount, &mut result);
            }
            // send_payment(src, dst, amount): checking transfer
            "send_payment" => {
                let [src, dst, amount] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "send_payment src dst amount".into(),
                    ));
                };
                let amount = parse_amount(amount)?;
                let src_bal = Self::read(db, &checking_key(src), &mut result);
                let dst_bal = Self::read(db, &checking_key(dst), &mut result);
                if src_bal < amount {
                    return Err(ChaincodeError::Aborted(format!(
                        "insufficient checking: {src_bal} < {amount}"
                    )));
                }
                Self::write(checking_key(src), src_bal - amount, &mut result);
                Self::write(checking_key(dst), dst_bal + amount, &mut result);
            }
            // write_check(customer, amount): checking -= amount
            "write_check" => {
                let [customer, amount] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "write_check customer amount".into(),
                    ));
                };
                let amount = parse_amount(amount)?;
                let bal = Self::read(db, &checking_key(customer), &mut result);
                Self::write(
                    checking_key(customer),
                    bal.saturating_sub(amount),
                    &mut result,
                );
            }
            // amalgamate(src, dst): move all of src's savings+checking
            // into dst's checking.
            "amalgamate" => {
                let [src, dst] = args else {
                    return Err(ChaincodeError::BadArguments("amalgamate src dst".into()));
                };
                let savings = Self::read(db, &savings_key(src), &mut result);
                let checking = Self::read(db, &checking_key(src), &mut result);
                let dst_bal = Self::read(db, &checking_key(dst), &mut result);
                Self::write(savings_key(src), 0, &mut result);
                Self::write(checking_key(src), 0, &mut result);
                Self::write(checking_key(dst), dst_bal + savings + checking, &mut result);
            }
            // send_payment_split(src, amount, dst1, dst2, ...): the
            // Figure 12c extension — 1+n reads, 1+n writes.
            "send_payment_split" => {
                if args.len() < 3 {
                    return Err(ChaincodeError::BadArguments(
                        "send_payment_split src amount dst...".into(),
                    ));
                }
                let src = &args[0];
                let amount = parse_amount(&args[1])?;
                let dsts = &args[2..];
                let src_bal = Self::read(db, &checking_key(src), &mut result);
                let total = amount * dsts.len() as u64;
                if src_bal < total {
                    return Err(ChaincodeError::Aborted(format!(
                        "insufficient checking: {src_bal} < {total}"
                    )));
                }
                let mut writes = vec![(checking_key(src), src_bal - total)];
                for dst in dsts {
                    let bal = Self::read(db, &checking_key(dst), &mut result);
                    writes.push((checking_key(dst), bal + amount));
                }
                for (k, v) in writes {
                    Self::write(k, v, &mut result);
                }
            }
            other => return Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
        Ok(result)
    }
}

fn parse_amount(s: &str) -> Result<u64, ChaincodeError> {
    s.parse()
        .map_err(|_| ChaincodeError::BadArguments(format!("bad amount {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::{Height, WriteBatch};

    fn seeded_db() -> StateDb {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put(checking_key("alice"), b"1000".to_vec());
        b.put(savings_key("alice"), b"500".to_vec());
        b.put(checking_key("bob"), b"100".to_vec());
        b.put(savings_key("bob"), b"50".to_vec());
        db.apply(&b, Height::new(1, 0));
        db
    }

    #[test]
    fn create_account_writes_two_keys_reads_none() {
        let db = StateDb::new();
        let r = Smallbank::new()
            .execute(
                "create_account",
                &["carol".into(), "10".into(), "20".into()],
                &db,
            )
            .unwrap();
        assert_eq!(r.reads.len(), 0);
        assert_eq!(r.writes.len(), 2);
    }

    #[test]
    fn send_payment_is_2r2w() {
        let db = seeded_db();
        let r = Smallbank::new()
            .execute(
                "send_payment",
                &["alice".into(), "bob".into(), "100".into()],
                &db,
            )
            .unwrap();
        assert_eq!(r.reads.len(), 2);
        assert_eq!(r.writes.len(), 2);
        assert_eq!(r.writes[0].1, b"900".to_vec());
        assert_eq!(r.writes[1].1, b"200".to_vec());
    }

    #[test]
    fn send_payment_insufficient_aborts() {
        let db = seeded_db();
        let err = Smallbank::new()
            .execute(
                "send_payment",
                &["bob".into(), "alice".into(), "9999".into()],
                &db,
            )
            .unwrap_err();
        assert!(matches!(err, ChaincodeError::Aborted(_)));
    }

    #[test]
    fn amalgamate_moves_everything() {
        let db = seeded_db();
        let r = Smallbank::new()
            .execute("amalgamate", &["alice".into(), "bob".into()], &db)
            .unwrap();
        assert_eq!(r.reads.len(), 3);
        assert_eq!(r.writes.len(), 3);
        // bob checking = 100 + 500 + 1000
        assert_eq!(r.writes[2].1, b"1600".to_vec());
    }

    #[test]
    fn split_payment_scales_rw_sets() {
        let db = seeded_db();
        // 3 destinations -> 4 reads, 4 writes (Figure 12c's "rw" knob).
        let r = Smallbank::new()
            .execute(
                "send_payment_split",
                &[
                    "alice".into(),
                    "10".into(),
                    "bob".into(),
                    "bob".into(),
                    "bob".into(),
                ],
                &db,
            )
            .unwrap();
        assert_eq!(r.reads.len(), 4);
        assert_eq!(r.writes.len(), 4);
    }

    #[test]
    fn unknown_function_rejected() {
        let db = StateDb::new();
        assert!(matches!(
            Smallbank::new().execute("mine", &[], &db).unwrap_err(),
            ChaincodeError::UnknownFunction(_)
        ));
    }

    #[test]
    fn balances_tolerate_missing_accounts() {
        let db = StateDb::new();
        let r = Smallbank::new()
            .execute("deposit_checking", &["ghost".into(), "5".into()], &db)
            .unwrap();
        assert_eq!(r.reads[0].1, None);
        assert_eq!(r.writes[0].1, b"5".to_vec());
    }
}
