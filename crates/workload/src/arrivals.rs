//! Open-loop arrival process for the admission front-end.
//!
//! Caliper's send rate controller submits transactions at a fixed rate
//! regardless of how fast the SUT drains them — an *open-loop* driver.
//! This module reproduces that shape: Poisson arrivals (exponential
//! interarrival times at `rate_per_sec`) attributed to a Zipf-skewed
//! sender population, so a small set of hot senders dominates while the
//! long tail stays live. The sender population can be in the millions:
//! sampling uses Hörmann & Derflinger's rejection-inversion method,
//! which is O(1) per draw with no precomputed harmonic table.
//!
//! The driver emits a deterministic schedule (a pure function of its
//! config), which the cluster's mempool-fed mode and the admission
//! benchmark replay against [`fabric-mempool`]'s `admit`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an open-loop arrival schedule.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Mean arrival rate (transactions per second).
    pub rate_per_sec: f64,
    /// Sender population size — may be in the millions.
    pub senders: u64,
    /// Zipf skew exponent `s > 0`; ~1.0 is the classic web-trace skew
    /// (larger = hotter head).
    pub zipf_exponent: f64,
    /// Total arrivals to schedule.
    pub arrivals: usize,
    /// RNG seed: the schedule is a deterministic function of the config.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rate_per_sec: 10_000.0,
            senders: 1_000_000,
            zipf_exponent: 1.0,
            arrivals: 1_000,
            seed: 7,
        }
    }
}

/// One scheduled submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in microseconds since the schedule start.
    pub at_us: u64,
    /// Zipf-ranked sender id in `0..senders` (0 is the hottest).
    pub sender: u64,
}

/// Zipf(*n*, *s*) sampler by rejection-inversion (Hörmann &
/// Derflinger, "Rejection-inversion to generate variates from monotone
/// discrete distributions", ACM TOMACS 1996). Draws rank `k ∈ [1, n]`
/// with `P(k) ∝ k^{-s}` in constant expected time and constant memory —
/// the property that lets the sender population scale to millions where
/// an inversion table would need gigabytes.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `1..=n` with skew `exponent`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `exponent <= 0` (a non-positive exponent
    /// is not a Zipf law; use a uniform draw instead).
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty population");
        assert!(exponent > 0.0, "zipf exponent must be positive");
        let h_integral_x1 = h_integral(1.5, exponent) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, exponent);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        ZipfSampler {
            n,
            exponent,
            h_integral_x1,
            h_integral_n,
            s,
        }
    }

    /// Draws one rank in `[1, n]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u: f64 = rng.gen::<f64>();
            let u = self.h_integral_n + u * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.exponent);
            let k = (x + 0.5) as u64;
            let k = k.clamp(1, self.n);
            // Accept if x landed close enough to an integer (the
            // unbounded-density shortcut) or under the hat function.
            if k as f64 - x <= self.s
                || u >= h_integral(k as f64 + 0.5, self.exponent) - h(k as f64, self.exponent)
            {
                return k;
            }
        }
    }
}

/// `H(x) = ∫₁ˣ t^{-s} dt`, evaluated in a numerically stable form near
/// `s = 1` (where the closed form degenerates to `ln x`).
fn h_integral(x: f64, exponent: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - exponent) * log_x) * log_x
}

/// The density `h(x) = x^{-s}`.
fn h(x: f64, exponent: f64) -> f64 {
    (-exponent * x.ln()).exp()
}

/// `H⁻¹(t)`.
fn h_integral_inverse(x: f64, exponent: f64) -> f64 {
    let mut t = x * (1.0 - exponent);
    if t < -1.0 {
        // Numerical guard: t crossing -1 would leave the domain.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `ln(1 + x) / x`, stable for `x → 0`.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(eˣ - 1) / x`, stable for `x → 0`.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

/// Generates the full open-loop schedule, arrivals sorted by time.
///
/// # Panics
///
/// Panics on a non-positive rate, an empty sender population, or a
/// non-positive Zipf exponent.
pub fn open_loop_schedule(cfg: &OpenLoopConfig) -> Vec<Arrival> {
    assert!(cfg.rate_per_sec > 0.0, "open-loop rate must be positive");
    let zipf = ZipfSampler::new(cfg.senders, cfg.zipf_exponent);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock_us = 0.0f64;
    let mut out = Vec::with_capacity(cfg.arrivals);
    for _ in 0..cfg.arrivals {
        // Exponential interarrival: -ln(1-U)/λ, in microseconds.
        let u: f64 = rng.gen::<f64>();
        clock_us += -(1.0 - u).ln() / cfg.rate_per_sec * 1e6;
        out.push(Arrival {
            at_us: clock_us as u64,
            sender: zipf.sample(&mut rng) - 1,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let cfg = OpenLoopConfig {
            arrivals: 500,
            ..OpenLoopConfig::default()
        };
        let a = open_loop_schedule(&cfg);
        let b = open_loop_schedule(&cfg);
        assert_eq!(a, b, "same config, same schedule");
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(a.iter().all(|arr| arr.sender < cfg.senders));
    }

    #[test]
    fn mean_interarrival_tracks_the_rate() {
        let cfg = OpenLoopConfig {
            rate_per_sec: 1_000.0,
            arrivals: 4_000,
            ..OpenLoopConfig::default()
        };
        let schedule = open_loop_schedule(&cfg);
        let span_us = schedule.last().unwrap().at_us as f64;
        let mean_us = span_us / cfg.arrivals as f64;
        // λ = 1000/s → 1000 µs mean gap; allow 10% sampling noise.
        assert!(
            (mean_us - 1_000.0).abs() < 100.0,
            "mean interarrival {mean_us} µs off the 1000 µs target"
        );
    }

    #[test]
    fn zipf_head_dominates_a_million_senders() {
        let zipf = ZipfSampler::new(1_000_000, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let draws = 20_000;
        let mut head = 0usize;
        let mut max_rank = 0u64;
        for _ in 0..draws {
            let k = zipf.sample(&mut rng);
            assert!((1..=1_000_000).contains(&k));
            if k <= 100 {
                head += 1;
            }
            max_rank = max_rank.max(k);
        }
        // For s=1, P(rank ≤ 100) = H(100)/H(1e6) ≈ 5.19/14.39 ≈ 0.36.
        let head_share = head as f64 / draws as f64;
        assert!(
            (0.30..0.42).contains(&head_share),
            "top-100 share {head_share} outside the s=1 expectation"
        );
        // The tail is genuinely exercised too.
        assert!(max_rank > 100_000, "tail never sampled (max {max_rank})");
    }

    #[test]
    fn zipf_rank_one_is_hottest() {
        let zipf = ZipfSampler::new(10_000, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            if (k as usize) <= counts.len() {
                counts[k as usize - 1] += 1;
            }
        }
        assert!(counts[0] > counts[1], "rank 1 beats rank 2: {counts:?}");
        assert!(counts[1] > counts[3], "rank 2 beats rank 4: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn non_positive_exponent_is_rejected() {
        let _ = ZipfSampler::new(10, 0.0);
    }
}
