//! Caliper-equivalent workload driver.
//!
//! "Caliper clients create random transactions, and a total of 150,000
//! transactions (30,000 repeated 5 times) are used to compute average
//! metrics" (paper §4.2). The driver generates random operations against
//! a [`FabricNetwork`], collects the blocks the ordering service cuts,
//! and measures the envelope-size profile the performance models consume.

use fabric_node::client::ClientError;
use fabric_node::network::FabricNetwork;
use fabric_peer::BlockProfile;
use fabric_protos::messages::Block;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which benchmark application to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// smallbank (banking operations).
    Smallbank,
    /// drm (digital asset management).
    Drm,
    /// smallbank's split-payment variant with `n` destinations
    /// (Figure 12c's rw knob).
    SplitPayment(usize),
}

impl Workload {
    /// The chaincode name this workload invokes.
    pub fn chaincode(&self) -> &'static str {
        match self {
            Workload::Smallbank | Workload::SplitPayment(_) => "smallbank",
            Workload::Drm => "drm",
        }
    }
}

/// The workload driver.
#[derive(Debug)]
pub struct Driver {
    workload: Workload,
    accounts: usize,
    rng: StdRng,
    submitted: u64,
    aborted: u64,
}

impl Driver {
    /// Creates a driver over `accounts` pre-created customers/contents.
    pub fn new(workload: Workload, accounts: usize, seed: u64) -> Self {
        Driver {
            workload,
            accounts: accounts.max(2),
            rng: StdRng::seed_from_u64(seed),
            submitted: 0,
            aborted: 0,
        }
    }

    /// Creates the initial accounts/contents, committing the resulting
    /// blocks to the endorsers so later simulations see them.
    ///
    /// # Errors
    ///
    /// Propagates [`ClientError`] from the setup invocations.
    pub fn prepare(&mut self, net: &mut FabricNetwork) -> Result<Vec<Block>, ClientError> {
        let mut blocks = Vec::new();
        for i in 0..self.accounts {
            let result = match self.workload {
                Workload::Smallbank | Workload::SplitPayment(_) => net.submit_invocation(
                    0,
                    "smallbank",
                    "create_account",
                    &[format!("acc{i}"), "10000".into(), "10000".into()],
                ),
                Workload::Drm => net.submit_invocation(
                    0,
                    "drm",
                    "register_content",
                    &[format!("content{i}"), format!("owner{i}"), "10".into()],
                ),
            }?;
            blocks.extend(result);
        }
        if let Some(block) = net.cut_partial_block() {
            blocks.push(block);
        }
        // Commit setup writes to the endorsers so follow-up simulations
        // read fresh versions.
        for block in &blocks {
            let decoded = fabric_protos::txflow::decode_block(&block.marshal())
                .expect("driver-produced blocks decode");
            let writes: Vec<fabric_node::endorser::TxWrites> = decoded
                .txs
                .iter()
                .enumerate()
                .map(|(i, tx)| (i as u64, tx.writes.clone()))
                .collect();
            net.commit_to_endorsers(decoded.number, &writes);
        }
        Ok(blocks)
    }

    /// Submits one random operation; returns any blocks cut.
    ///
    /// Operations mix: for smallbank, the Caliper distribution across the
    /// six functions (send_payment-heavy); for drm, purchase-heavy.
    ///
    /// # Errors
    ///
    /// Propagates [`ClientError`]; business aborts (insufficient funds)
    /// are counted and retried with a deposit instead.
    pub fn submit_one(&mut self, net: &mut FabricNetwork) -> Result<Vec<Block>, ClientError> {
        self.submitted += 1;
        let a = self.rng.gen_range(0..self.accounts);
        let b = (a + 1 + self.rng.gen_range(0..self.accounts - 1)) % self.accounts;
        let result = match self.workload {
            Workload::Smallbank => {
                let op = self.rng.gen_range(0..100);
                if op < 40 {
                    net.submit_invocation(
                        0,
                        "smallbank",
                        "send_payment",
                        &[format!("acc{a}"), format!("acc{b}"), "5".into()],
                    )
                } else if op < 55 {
                    net.submit_invocation(
                        0,
                        "smallbank",
                        "deposit_checking",
                        &[format!("acc{a}"), "10".into()],
                    )
                } else if op < 70 {
                    net.submit_invocation(
                        0,
                        "smallbank",
                        "transact_savings",
                        &[format!("acc{a}"), "10".into()],
                    )
                } else if op < 85 {
                    net.submit_invocation(
                        0,
                        "smallbank",
                        "write_check",
                        &[format!("acc{a}"), "5".into()],
                    )
                } else {
                    net.submit_invocation(
                        0,
                        "smallbank",
                        "amalgamate",
                        &[format!("acc{a}"), format!("acc{b}")],
                    )
                }
            }
            Workload::SplitPayment(n) => {
                let mut args = vec![format!("acc{a}"), "2".into()];
                for k in 0..n {
                    args.push(format!("acc{}", (b + k) % self.accounts));
                }
                net.submit_invocation(0, "smallbank", "send_payment_split", &args)
            }
            Workload::Drm => {
                let op = self.rng.gen_range(0..100);
                if op < 70 {
                    net.submit_invocation(
                        0,
                        "drm",
                        "purchase_license",
                        &[format!("content{a}"), format!("user{}", self.submitted)],
                    )
                } else {
                    net.submit_invocation(
                        0,
                        "drm",
                        "transfer_ownership",
                        &[format!("content{a}"), format!("owner{}", self.submitted)],
                    )
                }
            }
        };
        match result {
            Err(ClientError::Endorse(_)) => {
                // Business abort (e.g. insufficient funds): Caliper counts
                // these as failed submissions; top the account up instead.
                self.aborted += 1;
                net.submit_invocation(
                    0,
                    self.workload.chaincode(),
                    if self.workload == Workload::Drm {
                        "register_content"
                    } else {
                        "deposit_checking"
                    },
                    &if self.workload == Workload::Drm {
                        vec![format!("content{a}"), "owner".into(), "1".into()]
                    } else {
                        vec![format!("acc{a}"), "1000".into()]
                    },
                )
            }
            other => other,
        }
    }

    /// Generates blocks until `count` of them have been cut, committing
    /// each block's writes back to the endorsers.
    ///
    /// # Errors
    ///
    /// Propagates [`ClientError`] from submissions.
    pub fn generate_blocks(
        &mut self,
        net: &mut FabricNetwork,
        count: usize,
    ) -> Result<Vec<Block>, ClientError> {
        let mut blocks = Vec::new();
        while blocks.len() < count {
            for block in self.submit_one(net)? {
                let decoded = fabric_protos::txflow::decode_block(&block.marshal())
                    .expect("driver-produced blocks decode");
                let writes: Vec<fabric_node::endorser::TxWrites> = decoded
                    .txs
                    .iter()
                    .enumerate()
                    .map(|(i, tx)| (i as u64, tx.writes.clone()))
                    .collect();
                net.commit_to_endorsers(decoded.number, &writes);
                blocks.push(block);
            }
        }
        Ok(blocks)
    }

    /// `(submitted, aborted)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.submitted, self.aborted)
    }
}

/// Measures a [`BlockProfile`] from real blocks: average envelope size,
/// endorsements, and rwset shape. This grounds the performance models in
/// the actual wire data (the profile, not the paper's assumed constants).
pub fn measure_profile(blocks: &[Block]) -> BlockProfile {
    let mut txs = 0usize;
    let mut bytes = 0usize;
    let mut ends = 0usize;
    let mut reads = 0usize;
    let mut writes = 0usize;
    for block in blocks {
        let decoded = fabric_protos::txflow::decode_block(&block.marshal()).expect("blocks decode");
        for tx in &decoded.txs {
            txs += 1;
            bytes += tx.envelope_len;
            ends += tx.endorsements.len();
            reads += tx.reads.len();
            writes += tx.writes.len();
        }
    }
    let txs_nz = txs.max(1);
    BlockProfile {
        num_txs: txs / blocks.len().max(1),
        endorsements_per_tx: (ends + txs_nz / 2) / txs_nz,
        reads_per_tx: (reads + txs_nz / 2) / txs_nz,
        writes_per_tx: (writes + txs_nz / 2) / txs_nz,
        tx_bytes: bytes / txs_nz,
        policy_extra_visits: 0,
        needed_endorsements: (ends + txs_nz / 2) / txs_nz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drm::Drm;
    use crate::smallbank::Smallbank;
    use fabric_node::network::FabricNetworkBuilder;
    use fabric_policy::parse;

    fn smallbank_net(block_size: usize) -> FabricNetwork {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(block_size)
            .chaincode("smallbank", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(Smallbank::new()));
        net
    }

    #[test]
    fn prepare_creates_accounts() {
        let mut net = smallbank_net(4);
        let mut driver = Driver::new(Workload::Smallbank, 8, 42);
        let blocks = driver.prepare(&mut net).unwrap();
        assert!(!blocks.is_empty());
        // Endorser state sees the accounts.
        let db = net.reference_db();
        assert!(db.get("acc0_checking").is_some());
        assert!(db.get("acc7_savings").is_some());
    }

    #[test]
    fn generates_blocks_of_configured_size() {
        let mut net = smallbank_net(5);
        let mut driver = Driver::new(Workload::Smallbank, 8, 42);
        driver.prepare(&mut net).unwrap();
        let blocks = driver.generate_blocks(&mut net, 3).unwrap();
        assert_eq!(blocks.len(), 3);
        for b in &blocks {
            assert_eq!(b.data.data.len(), 5);
        }
    }

    #[test]
    fn profile_reflects_smallbank_shape() {
        let mut net = smallbank_net(6);
        let mut driver = Driver::new(Workload::Smallbank, 8, 7);
        driver.prepare(&mut net).unwrap();
        let blocks = driver.generate_blocks(&mut net, 2).unwrap();
        let profile = measure_profile(&blocks);
        assert_eq!(profile.endorsements_per_tx, 2); // 2of2 policy
        assert!(profile.tx_bytes > 2_000, "envelope {}", profile.tx_bytes);
        assert!(profile.reads_per_tx >= 1);
        assert!(profile.writes_per_tx >= 1);
    }

    #[test]
    fn drm_workload_runs() {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(4)
            .chaincode("drm", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(Drm::new()));
        let mut driver = Driver::new(Workload::Drm, 6, 9);
        driver.prepare(&mut net).unwrap();
        let blocks = driver.generate_blocks(&mut net, 2).unwrap();
        let profile = measure_profile(&blocks);
        // drm: fewer db accesses than smallbank.
        assert!(profile.reads_per_tx <= 1);
        assert!(profile.writes_per_tx <= 1);
    }

    #[test]
    fn split_payment_inflates_rw() {
        let mut net = smallbank_net(4);
        let mut driver = Driver::new(Workload::SplitPayment(4), 8, 11);
        driver.prepare(&mut net).unwrap();
        let blocks = driver.generate_blocks(&mut net, 2).unwrap();
        let profile = measure_profile(&blocks);
        assert!(profile.reads_per_tx >= 4, "reads {}", profile.reads_per_tx);
        assert!(
            profile.writes_per_tx >= 4,
            "writes {}",
            profile.writes_per_tx
        );
    }
}
