//! Multi-block stream scenarios for the streaming validator's
//! serial-equivalence harness and benchmarks.
//!
//! A [`StreamScenario`] turns a workload ([`Workload::Smallbank`] for the
//! hot-key regime — few accounts, every operation colliding on the same
//! checking/savings keys — or [`Workload::Drm`] for the wide-keyspace
//! regime, where every purchase mints a fresh license key) into an
//! ordered stream of real, orderer-signed blocks with controlled fault
//! injection:
//!
//! * **cross-block MVCC conflicts** — a block's writes are withheld from
//!   the endorsers with probability `stale_commit_pct`, so later blocks
//!   are endorsed against stale versions and must be flagged
//!   `MvccReadConflict` by any correct validator, streaming or serial;
//! * **invalid signatures** — `corrupt_sigs` client signatures are
//!   flipped (the tx must flag `BadSignature` while the rest of its
//!   block stays valid);
//! * **duplicate tx ids** — `duplicate_txs` envelopes are replayed into
//!   the following block verbatim.
//!
//! After injection the whole chain is rebuilt (data hashes, previous
//! hashes, orderer signatures), so every fault is *semantic*, never a
//! broken chain.

use std::collections::HashMap;

use fabric_crypto::identity::{Msp, Role, SigningIdentity};
use fabric_node::network::{FabricNetwork, FabricNetworkBuilder};
use fabric_policy::{parse, Policy};
use fabric_protos::messages::{Block, Envelope};
use fabric_protos::txflow::{block_header_hash, build_block};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::driver::{Driver, Workload};
use crate::drm::Drm;
use crate::smallbank::Smallbank;

/// Parameters of one generated block stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamScenario {
    /// Which benchmark application drives the stream.
    pub workload: Workload,
    /// Pre-created accounts/contents. Small values concentrate traffic
    /// on hot keys; large values spread it wide.
    pub accounts: usize,
    /// Transactions per block.
    pub block_size: usize,
    /// Workload blocks to generate *after* the setup blocks produced by
    /// account creation (the setup blocks are part of the stream — the
    /// validator needs them for state).
    pub num_blocks: usize,
    /// Percentage (0–100) of blocks whose writes are NOT committed back
    /// to the endorsers, forcing later endorsements to read stale
    /// versions (cross-block MVCC conflicts).
    pub stale_commit_pct: u8,
    /// Client signatures to corrupt across the workload blocks.
    pub corrupt_sigs: usize,
    /// Envelopes duplicated verbatim into the following block
    /// (duplicate tx ids).
    pub duplicate_txs: usize,
    /// RNG seed: the whole stream is a deterministic function of the
    /// scenario.
    pub seed: u64,
}

impl Default for StreamScenario {
    fn default() -> Self {
        StreamScenario {
            workload: Workload::Smallbank,
            accounts: 4,
            block_size: 2,
            num_blocks: 4,
            stale_commit_pct: 0,
            corrupt_sigs: 0,
            duplicate_txs: 0,
            seed: 7,
        }
    }
}

/// A generated stream plus everything a validator needs to process it.
#[derive(Debug)]
pub struct GeneratedStream {
    /// The ordered blocks (numbers `0..`), setup blocks first.
    pub blocks: Vec<Block>,
    /// Number of leading setup (account/content creation) blocks.
    pub setup_blocks: usize,
}

impl StreamScenario {
    /// The chaincode policies a validator of this stream must know.
    pub fn policies(&self) -> HashMap<String, Policy> {
        let mut policies = HashMap::new();
        policies.insert(
            self.workload.chaincode().to_string(),
            parse("2-outof-2 orgs").expect("literal policy parses"),
        );
        policies
    }

    /// An MSP trusting the same deterministic org CAs as the generated
    /// network, with the identities the blocks reference issued.
    pub fn validator_msp(&self) -> Msp {
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).expect("issue in fresh msp");
        msp.issue(1, Role::Peer, 0).expect("issue in fresh msp");
        msp.issue(0, Role::Orderer, 0).expect("issue in fresh msp");
        msp.issue(0, Role::Client, 0).expect("issue in fresh msp");
        msp
    }

    /// The deterministic orderer identity used to (re-)sign blocks.
    /// Public so a mempool-fed ordering service can cut blocks the
    /// serial oracle will accept as genuinely orderer-signed.
    pub fn orderer(&self) -> SigningIdentity {
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Orderer, 0).expect("issue in fresh msp")
    }

    fn network(&self) -> FabricNetwork {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(self.block_size)
            .chaincode(
                self.workload.chaincode(),
                parse("2-outof-2 orgs").expect("literal policy parses"),
            )
            .build();
        match self.workload {
            Workload::Smallbank | Workload::SplitPayment(_) => {
                net.install_chaincode(|| Box::new(Smallbank::new()));
            }
            Workload::Drm => {
                net.install_chaincode(|| Box::new(Drm::new()));
            }
        }
        net
    }

    /// Generates the stream.
    ///
    /// # Panics
    ///
    /// Panics if the underlying network rejects a driver invocation —
    /// scenarios are deterministic, so that is a bug, not an input
    /// condition.
    pub fn generate(&self) -> GeneratedStream {
        let mut net = self.network();
        let mut driver = Driver::new(self.workload, self.accounts, self.seed);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_b10c);

        // Setup: account/content creation, always committed back so the
        // workload proper starts from consistent state.
        let setup = driver.prepare(&mut net).expect("scenario setup");
        let setup_blocks = setup.len();
        let mut blocks = setup;

        // Workload blocks with per-block stale-commit injection.
        let mut produced = 0usize;
        while produced < self.num_blocks {
            let cut = driver.submit_one(&mut net).expect("scenario submission");
            for block in cut {
                let commit_back = rng.gen_range(0..100u8) >= self.stale_commit_pct;
                if commit_back {
                    commit_writes_to_endorsers(&mut net, &block);
                }
                blocks.push(block);
                produced += 1;
            }
        }

        // Fault injection over the workload blocks (setup stays clean so
        // the stream always has live state to conflict on).
        let lo = setup_blocks;
        let hi = blocks.len();
        // Corrupt *distinct* (block, tx) targets: hitting the same
        // signature twice would XOR it back to valid and silently inject
        // fewer faults than configured.
        let mut targets: Vec<(usize, usize)> = (lo..hi)
            .flat_map(|b| (0..blocks[b].data.data.len()).map(move |t| (b, t)))
            .collect();
        targets.shuffle(&mut rng);
        for &(b, t) in targets.iter().take(self.corrupt_sigs) {
            let mut env = Envelope::unmarshal(&blocks[b].data.data[t]).expect("envelope decodes");
            let n = env.signature.len();
            env.signature[n - 1] ^= 0x01;
            blocks[b].data.data[t] = env.marshal();
        }
        for _ in 0..self.duplicate_txs {
            if hi - lo < 2 {
                break;
            }
            let b = rng.gen_range(lo..hi - 1);
            let ntx = blocks[b].data.data.len();
            let t = rng.gen_range(0..ntx);
            let replayed = blocks[b].data.data[t].clone();
            blocks[b + 1].data.data.push(replayed);
        }

        // Rebuild the chain: tampering changed data hashes, so every
        // header (and orderer signature) is recomputed from block 0.
        let orderer = self.orderer();
        let mut prev = [0u8; 32];
        for (number, block) in blocks.iter_mut().enumerate() {
            let rebuilt = build_block(number as u64, &prev, block.data.data.clone(), &orderer);
            prev = block_header_hash(&rebuilt.header);
            *block = rebuilt;
        }

        GeneratedStream {
            blocks,
            setup_blocks,
        }
    }
}

/// Commits one block's writes to the endorsers so later endorsements
/// read fresh versions.
fn commit_writes_to_endorsers(net: &mut FabricNetwork, block: &Block) {
    let decoded =
        fabric_protos::txflow::decode_block(&block.marshal()).expect("generated blocks decode");
    let writes: Vec<fabric_node::endorser::TxWrites> = decoded
        .txs
        .iter()
        .enumerate()
        .map(|(i, tx)| (i as u64, tx.writes.clone()))
        .collect();
    net.commit_to_endorsers(decoded.number, &writes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_stream_is_deterministic_and_chains() {
        let scenario = StreamScenario {
            num_blocks: 3,
            ..StreamScenario::default()
        };
        let a = scenario.generate();
        let b = scenario.generate();
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.marshal(), y.marshal());
        }
        // Chain integrity after the rebuild pass.
        let mut prev = [0u8; 32];
        for (i, block) in a.blocks.iter().enumerate() {
            assert_eq!(block.header.number, i as u64);
            assert_eq!(block.header.previous_hash, prev.to_vec());
            prev = block_header_hash(&block.header);
        }
    }

    #[test]
    fn stale_commits_do_not_break_decoding() {
        let scenario = StreamScenario {
            stale_commit_pct: 100,
            corrupt_sigs: 1,
            duplicate_txs: 1,
            num_blocks: 3,
            ..StreamScenario::default()
        };
        let stream = scenario.generate();
        for block in &stream.blocks {
            fabric_protos::txflow::decode_block(&block.marshal()).expect("still decodable");
        }
        // The duplicate landed: some block carries more envelopes than
        // the configured size (setup blocks can also be partial).
        let sizes: Vec<usize> = stream.blocks.iter().map(|b| b.data.data.len()).collect();
        assert!(
            sizes.iter().any(|&s| s > scenario.block_size),
            "no duplicated envelope found in {sizes:?}"
        );
    }

    #[test]
    fn corrupt_sigs_hits_distinct_targets() {
        // Same seed with and without corruption: exactly `corrupt_sigs`
        // envelopes must differ — a repeated target would XOR a
        // signature back to valid and inject fewer faults.
        let base = StreamScenario {
            num_blocks: 3,
            block_size: 1,
            seed: 5,
            ..StreamScenario::default()
        };
        let clean = base.generate();
        let faulty = StreamScenario {
            corrupt_sigs: 2,
            ..base
        }
        .generate();
        let mut differing = 0;
        for (a, b) in clean.blocks.iter().zip(&faulty.blocks) {
            assert_eq!(a.data.data.len(), b.data.data.len());
            for (ea, eb) in a.data.data.iter().zip(&b.data.data) {
                if ea != eb {
                    differing += 1;
                }
            }
        }
        assert_eq!(differing, 2, "every configured corruption must land");
    }

    #[test]
    fn drm_scenario_mints_wide_keyspace() {
        let scenario = StreamScenario {
            workload: Workload::Drm,
            accounts: 8,
            num_blocks: 3,
            ..StreamScenario::default()
        };
        let stream = scenario.generate();
        assert!(stream.blocks.len() > stream.setup_blocks);
    }
}
