//! The drm (digital rights management) benchmark chaincode.
//!
//! "The drm application implements typical functions of managing digital
//! assets" (paper §4.2) and "has less accesses to database" than
//! smallbank (§4.3, Figure 13) — registrations write one key, purchases
//! read one and write one.

use fabric_node::chaincode::{Chaincode, ChaincodeError, SimulationResult};
use fabric_statedb::StateDb;

/// The drm chaincode.
#[derive(Debug, Default)]
pub struct Drm;

/// Key of a content record.
pub fn content_key(content_id: &str) -> String {
    format!("content_{content_id}")
}

/// Key of a license record.
pub fn license_key(content_id: &str, user: &str) -> String {
    format!("license_{content_id}_{user}")
}

impl Drm {
    /// Creates the chaincode.
    pub fn new() -> Self {
        Drm
    }
}

impl Chaincode for Drm {
    fn name(&self) -> &str {
        "drm"
    }

    fn execute(
        &self,
        function: &str,
        args: &[String],
        db: &StateDb,
    ) -> Result<SimulationResult, ChaincodeError> {
        let mut result = SimulationResult::default();
        match function {
            // register_content(content_id, owner, price): 0 reads 1 write
            "register_content" => {
                let [content_id, owner, price] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "register_content content_id owner price".into(),
                    ));
                };
                let record = format!("{owner}:{price}:registered");
                result
                    .writes
                    .push((content_key(content_id), record.into_bytes()));
            }
            // purchase_license(content_id, user): 1 read 1 write
            "purchase_license" => {
                let [content_id, user] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "purchase_license content_id user".into(),
                    ));
                };
                let content = db.get(&content_key(content_id));
                if content.is_none() {
                    return Err(ChaincodeError::Aborted(format!(
                        "content {content_id} not registered"
                    )));
                }
                result
                    .reads
                    .push((content_key(content_id), content.map(|v| v.version)));
                result
                    .writes
                    .push((license_key(content_id, user), b"licensed".to_vec()));
            }
            // transfer_ownership(content_id, new_owner): 1 read 1 write
            "transfer_ownership" => {
                let [content_id, new_owner] = args else {
                    return Err(ChaincodeError::BadArguments(
                        "transfer_ownership content_id new_owner".into(),
                    ));
                };
                let content = db.get(&content_key(content_id));
                let Some(existing) = content else {
                    return Err(ChaincodeError::Aborted(format!(
                        "content {content_id} not registered"
                    )));
                };
                let price = String::from_utf8_lossy(&existing.value)
                    .split(':')
                    .nth(1)
                    .unwrap_or("0")
                    .to_string();
                result
                    .reads
                    .push((content_key(content_id), Some(existing.version)));
                let record = format!("{new_owner}:{price}:transferred");
                result
                    .writes
                    .push((content_key(content_id), record.into_bytes()));
            }
            other => return Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::{Height, WriteBatch};

    #[test]
    fn register_is_write_only() {
        let db = StateDb::new();
        let r = Drm::new()
            .execute(
                "register_content",
                &["song1".into(), "alice".into(), "10".into()],
                &db,
            )
            .unwrap();
        assert_eq!(r.reads.len(), 0);
        assert_eq!(r.writes.len(), 1);
    }

    #[test]
    fn purchase_reads_content_writes_license() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put(content_key("song1"), b"alice:10:registered".to_vec());
        db.apply(&b, Height::new(1, 0));
        let r = Drm::new()
            .execute("purchase_license", &["song1".into(), "bob".into()], &db)
            .unwrap();
        assert_eq!(r.reads.len(), 1);
        assert_eq!(r.writes.len(), 1);
        assert_eq!(r.writes[0].0, license_key("song1", "bob"));
    }

    #[test]
    fn purchase_of_unregistered_aborts() {
        let db = StateDb::new();
        assert!(matches!(
            Drm::new()
                .execute("purchase_license", &["ghost".into(), "bob".into()], &db)
                .unwrap_err(),
            ChaincodeError::Aborted(_)
        ));
    }

    #[test]
    fn transfer_keeps_price() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put(content_key("song1"), b"alice:10:registered".to_vec());
        db.apply(&b, Height::new(1, 0));
        let r = Drm::new()
            .execute("transfer_ownership", &["song1".into(), "carol".into()], &db)
            .unwrap();
        assert_eq!(r.writes[0].1, b"carol:10:transferred".to_vec());
    }

    #[test]
    fn drm_touches_fewer_keys_than_smallbank() {
        // Figure 13's premise.
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put(content_key("c"), b"o:1:registered".to_vec());
        db.apply(&b, Height::new(1, 0));
        let drm = Drm::new()
            .execute("purchase_license", &["c".into(), "u".into()], &db)
            .unwrap();
        assert!(drm.reads.len() + drm.writes.len() <= 2);
    }
}
