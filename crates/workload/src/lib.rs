//! Caliper-equivalent workloads for the Blockchain Machine evaluation.
//!
//! Implements the benchmarks of paper §4.2: [`smallbank`] (six banking
//! operations plus the Figure 12c split-payment extension) and [`drm`]
//! (digital asset management with fewer database accesses), plus a
//! Caliper-like [`driver`] that generates random transactions against a
//! `FabricNetwork` and measures workload profiles for the performance
//! models.

#![warn(missing_docs)]

pub mod arrivals;
pub mod driver;
pub mod drm;
pub mod smallbank;
pub mod state_load;
pub mod stream_gen;

pub use arrivals::{open_loop_schedule, Arrival, OpenLoopConfig, ZipfSampler};
pub use driver::{measure_profile, Driver, Workload};
pub use drm::Drm;
pub use smallbank::Smallbank;
pub use state_load::{StatePreload, ZipfCommitLoad};
pub use stream_gen::{GeneratedStream, StreamScenario};
