//! State-database load scenarios: bulk preload to realistic population
//! sizes and Zipf-contended commit traffic.
//!
//! The stream scenarios in [`crate::stream_gen`] exercise the whole
//! validation pipeline but cap out at harness-scale state (tens of
//! accounts). The accelerator question ROADMAP item 3 asks — does the
//! software commit stage keep up once verification is off the critical
//! path? — needs the state database itself under load: millions of
//! keys resident ([`StatePreload`]) and skewed write traffic hammering
//! a hot set while readers pin snapshots ([`ZipfCommitLoad`]). Both
//! produce plain `(WriteBatch, Height)` streams so they drive any
//! [`fabric_statedb::StateDb`] backend identically — which is exactly
//! what the `statedb` benchmark section and the equivalence soak tests
//! want.

use fabric_statedb::{Height, StateDb, WriteBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::ZipfSampler;

/// Bulk key preload: `keys` accounts with fixed-width zero-padded names
/// (`acct0000000042`-style, so range scans by prefix are meaningful),
/// loaded in `batch_size`-key batches at consecutive heights starting
/// at block 0.
#[derive(Debug, Clone, Copy)]
pub struct StatePreload {
    /// Total keys to load.
    pub keys: u64,
    /// Bytes per value (deterministic contents derived from the key
    /// index).
    pub value_len: usize,
    /// Keys per [`WriteBatch`] (one batch = one commit height).
    pub batch_size: u64,
}

impl Default for StatePreload {
    fn default() -> Self {
        StatePreload {
            keys: 1_000_000,
            value_len: 8,
            batch_size: 10_000,
        }
    }
}

impl StatePreload {
    /// The canonical key of account index `i` (`0 <= i < keys`).
    pub fn key(i: u64) -> String {
        format!("acct{i:010}")
    }

    /// The deterministic value stored for account index `i`.
    pub fn value(&self, i: u64) -> Vec<u8> {
        let mut v = i.to_le_bytes().to_vec();
        v.resize(self.value_len, 0xA5);
        v.truncate(self.value_len);
        v
    }

    /// Iterates the preload as `(batch, height)` pairs: batch `b`
    /// commits at `Height(b, 0)`.
    pub fn batches(&self) -> impl Iterator<Item = (WriteBatch, Height)> + '_ {
        let total_batches = self.keys.div_ceil(self.batch_size);
        (0..total_batches).map(move |b| {
            let start = b * self.batch_size;
            let end = (start + self.batch_size).min(self.keys);
            let batch: WriteBatch = (start..end)
                .map(|i| (Self::key(i), Some(self.value(i))))
                .collect();
            (batch, Height::new(b, 0))
        })
    }

    /// Loads the full population into `db`, returning the number of
    /// batches applied. The next free block number is the return value
    /// (heights used were `0..batches`).
    pub fn load(&self, db: &StateDb) -> u64 {
        let mut batches = 0;
        for (batch, height) in self.batches() {
            db.apply(&batch, height);
            batches += 1;
        }
        batches
    }
}

/// Zipf-contended commit traffic over a preloaded population:
/// smallbank-shaped transactions (a couple of writes each) whose
/// account ranks draw from [`ZipfSampler`], grouped into blocks of
/// per-transaction batches — the shape
/// [`fabric_statedb::StateDb::apply_block`] consumes.
#[derive(Debug, Clone, Copy)]
pub struct ZipfCommitLoad {
    /// Account population the ranks map into (use
    /// [`StatePreload::keys`] to hit the preloaded keys).
    pub population: u64,
    /// Zipf skew; the paper's Caliper runs and the YCSB convention sit
    /// near 1.0 (higher = hotter hot set).
    pub exponent: f64,
    /// Writes per transaction (smallbank's send-payment touches 2).
    pub writes_per_tx: usize,
    /// Transactions (= batches) per block.
    pub txs_per_block: usize,
    /// Blocks to generate.
    pub blocks: u64,
    /// Block number of the first generated block (follow on from a
    /// preload's last height).
    pub first_block: u64,
    /// RNG seed — same seed, same traffic, any backend.
    pub seed: u64,
}

impl Default for ZipfCommitLoad {
    fn default() -> Self {
        ZipfCommitLoad {
            population: 1_000_000,
            exponent: 1.0,
            writes_per_tx: 2,
            txs_per_block: 100,
            blocks: 50,
            first_block: 0,
            seed: 0xB10C_F00D,
        }
    }
}

impl ZipfCommitLoad {
    /// Generates the blocks: each is a vector of per-transaction
    /// `(WriteBatch, Height)` pairs at consecutive tx indices.
    pub fn blocks(&self) -> Vec<Vec<(WriteBatch, Height)>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.population, self.exponent);
        (0..self.blocks)
            .map(|b| {
                let block_num = self.first_block + b;
                (0..self.txs_per_block)
                    .map(|tx| {
                        let mut batch = WriteBatch::new();
                        for _ in 0..self.writes_per_tx {
                            let rank = zipf.sample(&mut rng);
                            // Rank 1 = hottest; spread ranks over the key
                            // space deterministically so the hot set isn't
                            // one contiguous run of shard hashes.
                            let i = (rank - 1) % self.population;
                            let mut value = block_num.to_le_bytes().to_vec();
                            value.extend_from_slice(&(tx as u64).to_le_bytes());
                            batch.put(StatePreload::key(i), value);
                        }
                        (batch, Height::new(block_num, tx as u64))
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::StateBackend;

    #[test]
    fn preload_loads_exactly_keys() {
        let p = StatePreload {
            keys: 2_500,
            value_len: 8,
            batch_size: 1_000,
        };
        let db = StateDb::with_backend(StateBackend::Sharded);
        let batches = p.load(&db);
        assert_eq!(batches, 3);
        assert_eq!(db.len(), 2_500);
        assert_eq!(db.tip_height(), Some(Height::new(2, 0)));
        assert_eq!(db.get(&StatePreload::key(0)).unwrap().value, p.value(0));
        assert_eq!(
            db.get(&StatePreload::key(2_499)).unwrap().value.len(),
            p.value_len
        );
        assert_eq!(db.get(&StatePreload::key(2_500)), None);
    }

    #[test]
    fn preload_is_backend_identical() {
        let p = StatePreload {
            keys: 1_200,
            value_len: 16,
            batch_size: 500,
        };
        let legacy = StateDb::with_backend(StateBackend::Legacy);
        let sharded = StateDb::with_backend(StateBackend::Sharded);
        p.load(&legacy);
        p.load(&sharded);
        assert_eq!(legacy.state_hash(), sharded.state_hash());
    }

    #[test]
    fn zipf_load_is_deterministic_and_contended() {
        let load = ZipfCommitLoad {
            population: 1_000,
            blocks: 10,
            ..ZipfCommitLoad::default()
        };
        let a = load.blocks();
        let b = load.blocks();
        assert_eq!(a.len(), 10);
        assert_eq!(a[0].len(), load.txs_per_block);
        // Determinism: same seed, same traffic.
        let flat = |blocks: &Vec<Vec<(WriteBatch, Height)>>| -> Vec<(String, Height)> {
            blocks
                .iter()
                .flatten()
                .flat_map(|(batch, h)| {
                    batch
                        .iter()
                        .map(|(k, _)| (k.to_string(), *h))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        assert_eq!(flat(&a), flat(&b));
        // Contention: the hottest key appears far more often than the
        // uniform expectation.
        let keys = flat(&a);
        let mut counts = std::collections::HashMap::new();
        for (k, _) in &keys {
            *counts.entry(k.clone()).or_insert(0usize) += 1;
        }
        let hottest = counts.values().max().unwrap();
        let uniform = keys.len() / 1_000 + 1;
        assert!(
            *hottest > uniform * 5,
            "zipf(1.0) hot key hit {hottest} times, uniform would be ~{uniform}"
        );
    }

    #[test]
    fn zipf_blocks_apply_identically_on_both_backends() {
        let p = StatePreload {
            keys: 500,
            value_len: 8,
            batch_size: 250,
        };
        let load = ZipfCommitLoad {
            population: 500,
            blocks: 5,
            txs_per_block: 20,
            first_block: 2,
            ..ZipfCommitLoad::default()
        };
        let legacy = StateDb::with_backend(StateBackend::Legacy);
        let sharded = StateDb::with_backend(StateBackend::Sharded);
        p.load(&legacy);
        p.load(&sharded);
        for block in load.blocks() {
            legacy.apply_block(&block);
            sharded.apply_block(&block);
        }
        assert_eq!(legacy.state_hash(), sharded.state_hash());
        assert_eq!(legacy.tip_height(), sharded.tip_height());
    }
}
