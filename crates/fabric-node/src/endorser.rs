//! The endorser peer: proposal simulation + endorsement.
//!
//! "Each endorser peer executes the transaction against its own state
//! database, in order to compute the read and write sets. ... If there
//! are no errors, the peer sends back its endorsement to the client"
//! (paper §2.1.1). Endorsers also commit validated blocks, keeping their
//! state database current.

use fabric_crypto::identity::{NodeId, SigningIdentity};
use fabric_statedb::{Height, StateDb, WriteBatch};

use crate::chaincode::{ChaincodeError, ChaincodeRegistry, SimulationResult};

/// Write set of one transaction: `(key, value)` pairs, paired with the
/// transaction's index within its block.
pub type TxWrites = (u64, Vec<(String, Vec<u8>)>);

/// An endorser peer: identity + its own state database + installed
/// chaincodes.
#[derive(Debug)]
pub struct EndorserPeer {
    identity: SigningIdentity,
    db: StateDb,
    chaincodes: ChaincodeRegistry,
    endorsements_served: u64,
}

/// Errors from proposal handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndorseError {
    /// The chaincode is not installed on this peer.
    ChaincodeNotInstalled(String),
    /// Simulation failed.
    Simulation(ChaincodeError),
}

impl std::fmt::Display for EndorseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndorseError::ChaincodeNotInstalled(cc) => {
                write!(f, "chaincode {cc} is not installed")
            }
            EndorseError::Simulation(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for EndorseError {}

impl EndorserPeer {
    /// Creates an endorser with an empty state database.
    pub fn new(identity: SigningIdentity) -> Self {
        EndorserPeer {
            identity,
            db: StateDb::new(),
            chaincodes: ChaincodeRegistry::new(),
            endorsements_served: 0,
        }
    }

    /// Installs a chaincode.
    pub fn install_chaincode(&mut self, cc: Box<dyn crate::chaincode::Chaincode>) {
        self.chaincodes.install(cc);
    }

    /// The peer's signing identity (used by the client to collect the
    /// actual signature via `txflow::build_transaction`).
    pub fn identity(&self) -> &SigningIdentity {
        &self.identity
    }

    /// The peer's compact node id.
    pub fn node_id(&self) -> NodeId {
        self.identity.node_id()
    }

    /// The peer's state database (shared handle).
    pub fn state_db(&self) -> StateDb {
        self.db.clone()
    }

    /// Simulates a proposal: runs the chaincode against this peer's state
    /// database and returns the read/write sets.
    ///
    /// # Errors
    ///
    /// [`EndorseError::ChaincodeNotInstalled`] or a wrapped
    /// [`ChaincodeError`] from the chaincode itself.
    pub fn simulate(
        &mut self,
        chaincode: &str,
        function: &str,
        args: &[String],
    ) -> Result<SimulationResult, EndorseError> {
        let cc = self
            .chaincodes
            .get(chaincode)
            .ok_or_else(|| EndorseError::ChaincodeNotInstalled(chaincode.to_string()))?;
        let result = cc
            .execute(function, args, &self.db)
            .map_err(EndorseError::Simulation)?;
        self.endorsements_served += 1;
        Ok(result)
    }

    /// Applies the write sets of a validated block's valid transactions
    /// (endorsers commit blocks too, keeping simulation results fresh).
    pub fn commit_writes(&mut self, block_num: u64, tx_writes: &[TxWrites]) {
        for (tx_num, writes) in tx_writes {
            let mut batch = WriteBatch::new();
            for (k, v) in writes {
                batch.put(k.clone(), v.clone());
            }
            self.db.apply(&batch, Height::new(block_num, *tx_num));
        }
    }

    /// Endorsements served so far.
    pub fn endorsements_served(&self) -> u64 {
        self.endorsements_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::KvChaincode;
    use fabric_crypto::identity::{Msp, Role};

    fn make_endorser() -> EndorserPeer {
        let mut msp = Msp::new(1);
        let ident = msp.issue(0, Role::Peer, 0).unwrap();
        let mut e = EndorserPeer::new(ident);
        e.install_chaincode(Box::new(KvChaincode::new("kv")));
        e
    }

    #[test]
    fn simulate_returns_rwsets() {
        let mut e = make_endorser();
        let r = e.simulate("kv", "put", &["a".into(), "1".into()]).unwrap();
        assert_eq!(r.writes.len(), 1);
        assert_eq!(e.endorsements_served(), 1);
    }

    #[test]
    fn missing_chaincode_is_reported() {
        let mut e = make_endorser();
        assert_eq!(
            e.simulate("nope", "put", &[]).unwrap_err(),
            EndorseError::ChaincodeNotInstalled("nope".into())
        );
    }

    #[test]
    fn commit_updates_versions_seen_by_simulation() {
        let mut e = make_endorser();
        let before = e.simulate("kv", "get", &["a".into()]).unwrap();
        assert_eq!(before.reads[0].1, None);
        e.commit_writes(3, &[(1, vec![("a".into(), b"9".to_vec())])]);
        let after = e.simulate("kv", "get", &["a".into()]).unwrap();
        assert_eq!(after.reads[0].1, Some(Height::new(3, 1)));
    }
}
