//! Fabric network roles: endorser peers, clients, orderers, Gossip.
//!
//! Everything a validator peer consumes is produced here: endorser peers
//! simulate proposals against their state databases ([`endorser`]),
//! clients gather endorsements and sign envelopes ([`client`]), the
//! Raft-backed ordering service cuts signed blocks ([`orderer`]), and the
//! Gossip dissemination model ([`gossip`]) provides the baseline wire
//! behaviour the BMac protocol is compared against. [`network`] wires a
//! complete topology (paper Figure 8).
//!
//! # Example
//!
//! ```
//! use fabric_node::chaincode::KvChaincode;
//! use fabric_node::network::FabricNetworkBuilder;
//! use fabric_policy::parse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = FabricNetworkBuilder::new()
//!     .orgs(2)
//!     .block_size(2)
//!     .chaincode("kv", parse("2-outof-2 orgs")?)
//!     .build();
//! net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
//! net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])?;
//! let blocks = net.submit_invocation(0, "kv", "put", &["b".into(), "2".into()])?;
//! assert_eq!(blocks.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod chaincode;
pub mod client;
pub mod endorser;
pub mod gossip;
pub mod network;
pub mod orderer;

pub use chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, SimulationResult};
pub use client::{Client, ClientError};
pub use endorser::EndorserPeer;
pub use network::{FabricNetwork, FabricNetworkBuilder};
pub use orderer::{OrdererConfig, OrderingService};
