//! The ordering service: Raft-ordered envelopes cut into signed blocks.
//!
//! "The ordering service consists of one or more orderers, which use a
//! consensus mechanism to establish a total order for the transactions"
//! (paper §2.1.1). Envelopes are proposed to a Raft cluster; the lead
//! orderer cuts committed envelopes into blocks of a configured size and
//! signs them. The paper's evaluation runs a single-orderer Raft service
//! (§4.1); multi-orderer operation is exercised by the integration tests.

use fabric_crypto::identity::SigningIdentity;
use fabric_protos::messages::Block;
use fabric_protos::txflow::{block_header_hash, build_block};
use fabric_raft::cluster::Cluster;
use fabric_raft::ProposeError;

/// Configuration of the ordering service.
#[derive(Debug, Clone)]
pub struct OrdererConfig {
    /// Transactions per block ("block size" throughout the paper's
    /// evaluation).
    pub block_size: usize,
    /// Number of Raft orderer nodes (1 in the paper's setup).
    pub cluster_size: usize,
    /// Seed for the Raft cluster's randomized timers.
    pub seed: u64,
}

impl Default for OrdererConfig {
    fn default() -> Self {
        OrdererConfig {
            block_size: 150,
            cluster_size: 1,
            seed: 7,
        }
    }
}

/// The ordering service.
///
/// Multi-node mode drives a full [`Cluster`]; the common single-orderer
/// mode skips consensus messaging (a 1-node Raft group commits
/// immediately), matching the paper's deployment.
#[derive(Debug)]
pub struct OrderingService {
    identity: SigningIdentity,
    config: OrdererConfig,
    cluster: Option<Cluster>,
    /// Envelopes committed by consensus but not yet cut into a block.
    committed_pending: Vec<Vec<u8>>,
    /// Envelopes submitted in single-orderer mode.
    next_block_number: u64,
    previous_hash: [u8; 32],
    blocks_cut: u64,
}

impl OrderingService {
    /// Creates the service with the lead orderer's identity.
    pub fn new(identity: SigningIdentity, config: OrdererConfig) -> Self {
        let cluster = if config.cluster_size > 1 {
            let mut c = Cluster::new(config.cluster_size, config.seed);
            c.run_until_leader(1000)
                .expect("raft cluster elects a leader");
            Some(c)
        } else {
            None
        };
        OrderingService {
            identity,
            config,
            cluster,
            committed_pending: Vec::new(),
            next_block_number: 0,
            previous_hash: [0u8; 32],
            blocks_cut: 0,
        }
    }

    /// Number of transactions per block.
    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    /// The lead orderer's identity.
    pub fn identity(&self) -> &SigningIdentity {
        &self.identity
    }

    /// Submits a marshaled envelope for ordering. Returns any blocks cut
    /// as a consequence (usually zero or one).
    ///
    /// # Errors
    ///
    /// Propagates [`ProposeError`] if the Raft leader vanished (multi-node
    /// mode only; callers retry after [`OrderingService::tick`]).
    pub fn submit(&mut self, envelope: Vec<u8>) -> Result<Vec<Block>, ProposeError> {
        match &mut self.cluster {
            None => {
                self.committed_pending.push(envelope);
            }
            Some(cluster) => {
                cluster.propose(envelope);
                // Drive replication until commit (bounded rounds).
                for _ in 0..50 {
                    cluster.round();
                    let leader = match cluster.leader() {
                        Some(l) => l,
                        None => continue,
                    };
                    let committed = cluster.node_mut(leader).take_committed();
                    if !committed.is_empty() {
                        self.committed_pending.extend(committed);
                        break;
                    }
                }
            }
        }
        Ok(self.cut_ready_blocks())
    }

    /// Drains every verified-and-ready transaction from `mempool` into
    /// ordering, returning the blocks cut along the way. This is the
    /// mempool-fed mode: transactions reach the orderer already
    /// deduplicated and signature-checked, in admission order, so the
    /// blocks cut here are deterministic for a given admission
    /// sequence regardless of verify-pool parallelism.
    ///
    /// # Errors
    ///
    /// Propagates [`ProposeError`] from [`OrderingService::submit`]
    /// (multi-node mode only). Transactions already drained from the
    /// mempool before the error are retained in `committed_pending`
    /// and will be cut once the leader recovers.
    pub fn ingest_mempool(
        &mut self,
        mempool: &fabric_mempool::Mempool,
    ) -> Result<Vec<Block>, ProposeError> {
        let mut out = Vec::new();
        for envelope in mempool.drain(usize::MAX) {
            out.extend(self.submit(envelope)?);
        }
        Ok(out)
    }

    /// Advances the Raft cluster (no-op for single-orderer mode).
    pub fn tick(&mut self) {
        if let Some(cluster) = &mut self.cluster {
            cluster.round();
        }
    }

    /// Cuts a block from whatever is pending, even if smaller than the
    /// configured block size (Fabric's batch timeout path).
    pub fn cut_partial_block(&mut self) -> Option<Block> {
        if self.committed_pending.is_empty() {
            return None;
        }
        let take = self.committed_pending.len().min(self.config.block_size);
        let envs: Vec<Vec<u8>> = self.committed_pending.drain(..take).collect();
        Some(self.cut(envs))
    }

    /// Blocks cut so far.
    pub fn blocks_cut(&self) -> u64 {
        self.blocks_cut
    }

    fn cut_ready_blocks(&mut self) -> Vec<Block> {
        let mut out = Vec::new();
        while self.committed_pending.len() >= self.config.block_size {
            let envs: Vec<Vec<u8>> = self
                .committed_pending
                .drain(..self.config.block_size)
                .collect();
            out.push(self.cut(envs));
        }
        out
    }

    fn cut(&mut self, envelopes: Vec<Vec<u8>>) -> Block {
        let block = build_block(
            self.next_block_number,
            &self.previous_hash,
            envelopes,
            &self.identity,
        );
        self.previous_hash = block_header_hash(&block.header);
        self.next_block_number += 1;
        self.blocks_cut += 1;
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::{Msp, Role};

    fn orderer_identity() -> SigningIdentity {
        let mut msp = Msp::new(1);
        msp.issue(0, Role::Orderer, 0).unwrap()
    }

    #[test]
    fn cuts_block_at_configured_size() {
        let mut svc = OrderingService::new(
            orderer_identity(),
            OrdererConfig {
                block_size: 3,
                cluster_size: 1,
                seed: 1,
            },
        );
        assert!(svc.submit(vec![1]).unwrap().is_empty());
        assert!(svc.submit(vec![2]).unwrap().is_empty());
        let blocks = svc.submit(vec![3]).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].data.data.len(), 3);
        assert_eq!(blocks[0].header.number, 0);
    }

    #[test]
    fn blocks_chain_hashes() {
        let mut svc = OrderingService::new(
            orderer_identity(),
            OrdererConfig {
                block_size: 1,
                cluster_size: 1,
                seed: 1,
            },
        );
        let b0 = svc.submit(vec![1]).unwrap().remove(0);
        let b1 = svc.submit(vec![2]).unwrap().remove(0);
        assert_eq!(
            b1.header.previous_hash,
            block_header_hash(&b0.header).to_vec()
        );
        assert_eq!(svc.blocks_cut(), 2);
    }

    #[test]
    fn partial_block_on_timeout() {
        let mut svc = OrderingService::new(
            orderer_identity(),
            OrdererConfig {
                block_size: 10,
                cluster_size: 1,
                seed: 1,
            },
        );
        svc.submit(vec![1]).unwrap();
        svc.submit(vec![2]).unwrap();
        let block = svc.cut_partial_block().expect("partial block");
        assert_eq!(block.data.data.len(), 2);
        assert!(svc.cut_partial_block().is_none());
    }

    #[test]
    fn mempool_fed_blocks_follow_admission_order() {
        use fabric_mempool::{AdmitOutcome, Mempool, MempoolConfig};
        use fabric_protos::txflow::{build_transaction, TxParams};
        use std::sync::Arc;

        let mut msp = Msp::new(1);
        let client = msp.issue(0, Role::Client, 1).unwrap();
        let endorser = msp.issue(0, Role::Peer, 1).unwrap();
        let envs: Vec<Vec<u8>> = (0..4u8)
            .map(|i| {
                build_transaction(
                    &client,
                    &[&endorser],
                    &TxParams {
                        channel_id: "ch",
                        chaincode: "kv",
                        reads: vec![],
                        writes: vec![(format!("k{i}"), vec![i])],
                        nonce: vec![i],
                        timestamp: 1,
                    },
                )
                .envelope
            })
            .collect();

        let mempool = Mempool::new(
            MempoolConfig::default(),
            Arc::new(fabric_mempool::SignatureCache::new(1024)),
        );
        for env in &envs {
            assert_eq!(mempool.admit(env), AdmitOutcome::Admitted);
        }
        mempool.verify_pending();

        let mut svc = OrderingService::new(
            orderer_identity(),
            OrdererConfig {
                block_size: 2,
                cluster_size: 1,
                seed: 1,
            },
        );
        let blocks = svc.ingest_mempool(&mempool).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].data.data, envs[..2].to_vec());
        assert_eq!(blocks[1].data.data, envs[2..].to_vec());
        assert_eq!(mempool.ready_len(), 0, "mempool fully drained");
    }

    #[test]
    fn multi_orderer_raft_orders_envelopes() {
        let mut svc = OrderingService::new(
            orderer_identity(),
            OrdererConfig {
                block_size: 2,
                cluster_size: 3,
                seed: 42,
            },
        );
        svc.submit(b"tx1".to_vec()).unwrap();
        let blocks = svc.submit(b"tx2".to_vec()).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].data.data, vec![b"tx1".to_vec(), b"tx2".to_vec()]);
    }
}
