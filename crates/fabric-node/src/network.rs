//! Fabric network assembly: organizations, peers, clients, orderer.
//!
//! Builds the paper's experimental topology (Figure 8): N organizations,
//! each with a certificate authority and endorser peer(s), a Raft
//! ordering service, and clients submitting transactions — everything a
//! validator peer (software-only or BMac) consumes.

use fabric_crypto::identity::{Msp, Role, SigningIdentity};
use fabric_policy::Policy;
use fabric_protos::messages::Block;

use crate::chaincode::{Chaincode, SimulationResult};
use crate::client::{Client, ClientError};
use crate::endorser::{EndorserPeer, TxWrites};
use crate::orderer::{OrdererConfig, OrderingService};

/// Builder for [`FabricNetwork`].
///
/// ```
/// use fabric_node::network::FabricNetworkBuilder;
/// use fabric_policy::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let network = FabricNetworkBuilder::new()
///     .orgs(2)
///     .endorsers_per_org(1)
///     .block_size(4)
///     .chaincode("kv", parse("2-outof-2 orgs")?)
///     .build();
/// assert_eq!(network.num_orgs(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FabricNetworkBuilder {
    orgs: u8,
    endorsers_per_org: u8,
    clients: usize,
    block_size: usize,
    orderer_cluster: usize,
    channel: String,
    chaincodes: Vec<(String, Policy)>,
    seed: u64,
}

impl Default for FabricNetworkBuilder {
    fn default() -> Self {
        FabricNetworkBuilder {
            orgs: 2,
            endorsers_per_org: 1,
            clients: 1,
            block_size: 150,
            orderer_cluster: 1,
            channel: "mychannel".into(),
            chaincodes: Vec::new(),
            seed: 7,
        }
    }
}

impl FabricNetworkBuilder {
    /// Creates a builder with the paper's default topology (2 orgs, one
    /// endorser each, single orderer, block size 150).
    pub fn new() -> Self {
        FabricNetworkBuilder::default()
    }

    /// Number of organizations.
    pub fn orgs(mut self, n: u8) -> Self {
        self.orgs = n;
        self
    }

    /// Endorser peers per organization.
    pub fn endorsers_per_org(mut self, n: u8) -> Self {
        self.endorsers_per_org = n;
        self
    }

    /// Number of clients (Caliper ran 16).
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n.max(1);
        self
    }

    /// Transactions per block.
    pub fn block_size(mut self, n: usize) -> Self {
        self.block_size = n.max(1);
        self
    }

    /// Raft ordering-service size.
    pub fn orderer_cluster(mut self, n: usize) -> Self {
        self.orderer_cluster = n.max(1);
        self
    }

    /// Channel name.
    pub fn channel(mut self, name: impl Into<String>) -> Self {
        self.channel = name.into();
        self
    }

    /// Registers a chaincode name with its endorsement policy. The
    /// chaincode implementation is installed on peers via
    /// [`FabricNetwork::install_chaincode`].
    pub fn chaincode(mut self, name: impl Into<String>, policy: Policy) -> Self {
        self.chaincodes.push((name.into(), policy));
        self
    }

    /// RNG seed for nonces and Raft timers.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assembles the network: issues identities, spawns peers/clients,
    /// boots the ordering service.
    pub fn build(self) -> FabricNetwork {
        let mut msp = Msp::new(self.orgs);
        let mut endorsers = Vec::new();
        for org in 0..self.orgs {
            for seq in 0..self.endorsers_per_org {
                let ident = msp.issue(org, Role::Peer, seq).expect("issue endorser");
                endorsers.push(EndorserPeer::new(ident));
            }
        }
        let orderer_ident = msp.issue(0, Role::Orderer, 0).expect("issue orderer");
        let ordering = OrderingService::new(
            orderer_ident,
            OrdererConfig {
                block_size: self.block_size,
                cluster_size: self.orderer_cluster,
                seed: self.seed,
            },
        );
        let clients = (0..self.clients)
            .map(|i| {
                // Round-robin clients across orgs in usize space: the old
                // `(i as u8) % orgs` truncated i BEFORE the modulo, so in
                // a network with ≥ 17 orgs client 256 wrapped back to
                // org 0 and silently *collided* with an earlier client's
                // identity (the PR 4 truncation class). The remainder
                // fits u8 because orgs does; the per-org sequence is a
                // 4-bit protocol field, so exhausting it must be a loud
                // error naming the capacity, not a wrap.
                let orgs = usize::from(self.orgs.max(1));
                let org = (i % orgs) as u8;
                let seq = u8::try_from(i / orgs).expect("seq bounded by issue() below");
                let ident = msp.issue(org, Role::Client, seq).unwrap_or_else(|e| {
                    panic!(
                        "client {i} does not fit the identity scheme \
                         ({orgs} orgs × 16 client slots): {e}"
                    )
                });
                Client::new(ident, self.channel.clone(), self.seed ^ (i as u64) << 16)
            })
            .collect();
        FabricNetwork {
            msp,
            endorsers,
            endorsers_per_org: self.endorsers_per_org,
            clients,
            ordering,
            channel: self.channel,
            chaincodes: self.chaincodes,
        }
    }
}

/// A complete Fabric network minus the validator peers (which are the
/// subject of the experiments and attach separately).
#[derive(Debug)]
pub struct FabricNetwork {
    msp: Msp,
    endorsers: Vec<EndorserPeer>,
    endorsers_per_org: u8,
    clients: Vec<Client>,
    ordering: OrderingService,
    channel: String,
    chaincodes: Vec<(String, Policy)>,
}

impl FabricNetwork {
    /// Number of organizations.
    pub fn num_orgs(&self) -> u8 {
        self.msp.num_orgs()
    }

    /// The membership service provider.
    pub fn msp(&self) -> &Msp {
        &self.msp
    }

    /// Channel name.
    pub fn channel(&self) -> &str {
        &self.channel
    }

    /// The endorsement policy registered for a chaincode.
    pub fn policy(&self, chaincode: &str) -> Option<&Policy> {
        self.chaincodes
            .iter()
            .find(|(name, _)| name == chaincode)
            .map(|(_, p)| p)
    }

    /// All registered `(chaincode, policy)` pairs.
    pub fn chaincodes(&self) -> &[(String, Policy)] {
        &self.chaincodes
    }

    /// Installs a chaincode implementation on every endorser via the
    /// provided factory.
    pub fn install_chaincode<F>(&mut self, factory: F)
    where
        F: Fn() -> Box<dyn Chaincode>,
    {
        for e in &mut self.endorsers {
            e.install_chaincode(factory());
        }
    }

    /// The ordering service.
    pub fn ordering_mut(&mut self) -> &mut OrderingService {
        &mut self.ordering
    }

    /// The lead orderer's identity.
    pub fn orderer_identity(&self) -> &SigningIdentity {
        self.ordering.identity()
    }

    /// A shared handle to endorser 0's state database (useful as the
    /// reference state in tests).
    pub fn reference_db(&self) -> fabric_statedb::StateDb {
        self.endorsers[0].state_db()
    }

    /// Submits one invocation through the full flow: pick endorsers from
    /// the policy, simulate, sign, order. Returns any blocks cut.
    ///
    /// # Errors
    ///
    /// [`ClientError`] from endorsement; unknown chaincodes are a
    /// [`ClientError::Endorse`] failure.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn submit_invocation(
        &mut self,
        client: usize,
        chaincode: &str,
        function: &str,
        args: &[String],
    ) -> Result<Vec<Block>, ClientError> {
        let policy = self
            .chaincodes
            .iter()
            .find(|(name, _)| name == chaincode)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(|| Policy::k_out_of_n_orgs(1, 1));
        // One endorsement per principal org in the policy (the paper's
        // workloads carry one endorsement per organization listed).
        let principal_orgs: Vec<u8> = policy.principals().iter().map(|p| p.org).collect();
        let endorsers_per_org = self.endorsers_per_org.max(1) as usize;
        let mut indices: Vec<usize> = principal_orgs
            .iter()
            .map(|&org| org as usize * endorsers_per_org)
            .filter(|&i| i < self.endorsers.len())
            .collect();
        indices.sort_unstable();
        indices.dedup();
        let client_ref = &mut self.clients[client];
        // Simulate on each selected endorser and compare.
        let mut sims: Vec<SimulationResult> = Vec::with_capacity(indices.len());
        for &i in &indices {
            sims.push(
                self.endorsers[i]
                    .simulate(chaincode, function, args)
                    .map_err(ClientError::Endorse)?,
            );
        }
        if sims.is_empty() {
            return Err(ClientError::NoEndorsers);
        }
        let first = sims[0].clone();
        if sims[1..]
            .iter()
            .any(|s| s.reads != first.reads || s.writes != first.writes)
        {
            return Err(ClientError::EndorsementMismatch);
        }
        // Borrow the selected endorsers mutably for signing.
        let mut selected: Vec<&mut EndorserPeer> = Vec::with_capacity(indices.len());
        let mut rest: &mut [EndorserPeer] = &mut self.endorsers;
        let mut consumed = 0usize;
        for &i in &indices {
            let (_, tail) = rest.split_at_mut(i - consumed);
            let (head, tail) = tail.split_at_mut(1);
            selected.push(&mut head[0]);
            rest = tail;
            consumed = i + 1;
        }
        let built = client_ref.assemble(&selected, chaincode, first);
        self.ordering
            .submit(built.envelope)
            .map_err(|_| ClientError::NoEndorsers)
    }

    /// Applies committed writes to every endorser's state database
    /// (endorsers commit blocks too).
    pub fn commit_to_endorsers(&mut self, block_num: u64, tx_writes: &[TxWrites]) {
        for e in &mut self.endorsers {
            e.commit_writes(block_num, tx_writes);
        }
    }

    /// Cuts a partial block (Fabric's batch timeout).
    pub fn cut_partial_block(&mut self) -> Option<Block> {
        self.ordering.cut_partial_block()
    }

    /// Number of endorser peers.
    pub fn num_endorsers(&self) -> usize {
        self.endorsers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::KvChaincode;
    use fabric_policy::parse;
    use fabric_protos::txflow::decode_block;

    fn kv_network(block_size: usize) -> FabricNetwork {
        let mut n = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(block_size)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        n.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        n
    }

    /// Regression (PR 4 truncation class): client→org assignment must
    /// round-robin in usize space. The old `(i as u8) % orgs` truncated
    /// the client index first, so in a 20-org network client 256 wrapped
    /// to org 0 and client 256 reused the identity already issued to
    /// client 240 — two clients silently signing as the same node.
    #[test]
    fn client_org_assignment_survives_the_u8_boundary() {
        let net = FabricNetworkBuilder::new()
            .orgs(20)
            .clients(280)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        let mut seen = std::collections::HashSet::new();
        for (i, client) in net.clients.iter().enumerate() {
            let id = client.identity().node_id();
            assert_eq!(id.org, (i % 20) as u8, "client {i} org untruncated");
            assert_eq!(id.seq, (i / 20) as u8, "client {i} seq");
            assert!(seen.insert(id), "client {i} reuses identity {id}");
        }
    }

    /// The per-org client sequence is a 4-bit protocol field; exceeding
    /// 16 clients per org must fail loudly, naming the capacity — never
    /// wrap into a colliding identity.
    #[test]
    #[should_panic(expected = "does not fit the identity scheme")]
    fn client_overflow_per_org_is_a_loud_error() {
        let _ = FabricNetworkBuilder::new()
            .orgs(2)
            .clients(33) // 17 for org 0: seq 16 does not fit 4 bits
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
    }

    #[test]
    fn full_flow_produces_decodable_blocks() {
        let mut net = kv_network(2);
        assert!(net
            .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
            .unwrap()
            .is_empty());
        let blocks = net
            .submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
            .unwrap();
        assert_eq!(blocks.len(), 1);
        let decoded = decode_block(&blocks[0].marshal()).unwrap();
        assert_eq!(decoded.txs.len(), 2);
        // 2of2 policy -> 2 endorsements per tx
        assert_eq!(decoded.txs[0].endorsements.len(), 2);
        // Orderer signature verifies.
        assert!(decoded
            .orderer_cert
            .public_key
            .verify(&decoded.orderer_signed_message, &decoded.orderer_signature)
            .is_ok());
    }

    #[test]
    fn policy_drives_endorser_selection() {
        let mut net = FabricNetworkBuilder::new()
            .orgs(3)
            .block_size(1)
            .chaincode("kv", parse("2of3").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        let blocks = net
            .submit_invocation(0, "kv", "put", &["x".into(), "1".into()])
            .unwrap();
        let decoded = decode_block(&blocks[0].marshal()).unwrap();
        // 2of3 policy transactions carry 3 endorsements (one per org).
        assert_eq!(decoded.txs[0].endorsements.len(), 3);
    }

    #[test]
    fn endorser_dbs_stay_in_sync_through_commits() {
        let mut net = kv_network(1);
        let blocks = net
            .submit_invocation(0, "kv", "put", &["k".into(), "1".into()])
            .unwrap();
        assert_eq!(blocks.len(), 1);
        net.commit_to_endorsers(0, &[(0, vec![("k".into(), b"1".to_vec())])]);
        // Next invocation reads the committed version on all endorsers —
        // no mismatch error.
        let blocks = net
            .submit_invocation(0, "kv", "put", &["k".into(), "2".into()])
            .unwrap();
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn unknown_chaincode_fails_cleanly() {
        let mut net = kv_network(1);
        let err = net
            .submit_invocation(0, "ghost", "put", &["a".into(), "1".into()])
            .unwrap_err();
        assert!(matches!(err, ClientError::Endorse(_)));
    }
}
