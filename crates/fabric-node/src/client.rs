//! The application client: proposal, endorsement gathering, submission.
//!
//! "A client creates a transaction and sends it to a number of endorser
//! peers ... After the client has gathered enough endorsements, it
//! submits the transaction with its endorsements to the ordering service"
//! (paper §2.1.1). The set of endorsers is chosen from the chaincode's
//! endorsement policy principals.

use fabric_crypto::identity::SigningIdentity;
use fabric_protos::txflow::{build_transaction, BuiltTransaction, TxParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chaincode::SimulationResult;
use crate::endorser::{EndorseError, EndorserPeer};

/// Errors from the client's endorsement flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No endorsers were provided.
    NoEndorsers,
    /// An endorser failed to simulate the proposal.
    Endorse(EndorseError),
    /// Two endorsers produced different read/write sets — the proposal is
    /// non-deterministic or state has diverged.
    EndorsementMismatch,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoEndorsers => write!(f, "no endorsers supplied"),
            ClientError::Endorse(e) => write!(f, "endorsement failed: {e}"),
            ClientError::EndorsementMismatch => {
                write!(f, "endorsers disagree on simulation results")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// An application client with a signing identity and a nonce source.
#[derive(Debug)]
pub struct Client {
    identity: SigningIdentity,
    channel: String,
    rng: StdRng,
    txs_created: u64,
}

impl Client {
    /// Creates a client on `channel` with a deterministic nonce stream.
    pub fn new(identity: SigningIdentity, channel: impl Into<String>, seed: u64) -> Self {
        Client {
            identity,
            channel: channel.into(),
            rng: StdRng::seed_from_u64(seed),
            txs_created: 0,
        }
    }

    /// The client's identity.
    pub fn identity(&self) -> &SigningIdentity {
        &self.identity
    }

    /// Full endorsement flow: simulate on every endorser, check the
    /// results agree, and assemble the signed envelope.
    ///
    /// # Errors
    ///
    /// [`ClientError`] when no endorsers are given, simulation fails, or
    /// endorsers disagree.
    pub fn create_transaction(
        &mut self,
        endorsers: &mut [&mut EndorserPeer],
        chaincode: &str,
        function: &str,
        args: &[String],
    ) -> Result<BuiltTransaction, ClientError> {
        if endorsers.is_empty() {
            return Err(ClientError::NoEndorsers);
        }
        let mut results: Vec<SimulationResult> = Vec::with_capacity(endorsers.len());
        for e in endorsers.iter_mut() {
            results.push(
                e.simulate(chaincode, function, args)
                    .map_err(ClientError::Endorse)?,
            );
        }
        let first = &results[0];
        for other in &results[1..] {
            if other.reads != first.reads || other.writes != first.writes {
                return Err(ClientError::EndorsementMismatch);
            }
        }
        Ok(self.assemble(endorsers, chaincode, first.clone()))
    }

    /// Builds the envelope from an existing simulation result (used by
    /// workload generators that already computed the rwset).
    pub fn assemble(
        &mut self,
        endorsers: &[&mut EndorserPeer],
        chaincode: &str,
        sim: SimulationResult,
    ) -> BuiltTransaction {
        let mut nonce = vec![0u8; 24];
        self.rng.fill(&mut nonce[..]);
        self.txs_created += 1;
        let endorser_ids: Vec<&SigningIdentity> = endorsers.iter().map(|e| e.identity()).collect();
        // The state DB versions become wire-format rwset versions.
        let reads = sim
            .reads
            .into_iter()
            .map(|(k, h)| {
                (
                    k,
                    h.map(|h| fabric_protos::Version {
                        block_num: h.block_num,
                        tx_num: h.tx_num,
                    }),
                )
            })
            .collect();
        build_transaction(
            &self.identity,
            &endorser_ids,
            &TxParams {
                channel_id: &self.channel,
                chaincode,
                reads,
                writes: sim.writes,
                nonce,
                timestamp: 1_700_000_000 + self.txs_created,
            },
        )
    }

    /// Transactions created so far.
    pub fn txs_created(&self) -> u64 {
        self.txs_created
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::KvChaincode;
    use fabric_crypto::identity::{Msp, Role};
    use fabric_protos::txflow::decode_transaction;

    fn setup() -> (Client, EndorserPeer, EndorserPeer) {
        let mut msp = Msp::new(2);
        let client_ident = msp.issue(0, Role::Client, 0).unwrap();
        let e1_ident = msp.issue(0, Role::Peer, 0).unwrap();
        let e2_ident = msp.issue(1, Role::Peer, 0).unwrap();
        let mut e1 = EndorserPeer::new(e1_ident);
        let mut e2 = EndorserPeer::new(e2_ident);
        e1.install_chaincode(Box::new(KvChaincode::new("kv")));
        e2.install_chaincode(Box::new(KvChaincode::new("kv")));
        (Client::new(client_ident, "mychannel", 1), e1, e2)
    }

    #[test]
    fn endorsed_transaction_decodes_with_two_endorsements() {
        let (mut client, mut e1, mut e2) = setup();
        let built = client
            .create_transaction(
                &mut [&mut e1, &mut e2],
                "kv",
                "put",
                &["k".into(), "v".into()],
            )
            .unwrap();
        let decoded = decode_transaction(&built.envelope).unwrap();
        assert_eq!(decoded.endorsements.len(), 2);
        assert_eq!(decoded.chaincode, "kv");
        assert_eq!(decoded.channel_id, "mychannel");
    }

    #[test]
    fn mismatched_endorser_state_is_detected() {
        let (mut client, mut e1, mut e2) = setup();
        // Skew e2's database so simulations disagree on read versions.
        e2.commit_writes(1, &[(0, vec![("k".into(), b"x".to_vec())])]);
        let err = client
            .create_transaction(
                &mut [&mut e1, &mut e2],
                "kv",
                "put",
                &["k".into(), "v".into()],
            )
            .unwrap_err();
        assert_eq!(err, ClientError::EndorsementMismatch);
    }

    #[test]
    fn no_endorsers_rejected() {
        let (mut client, _, _) = setup();
        assert_eq!(
            client
                .create_transaction(&mut [], "kv", "put", &[])
                .unwrap_err(),
            ClientError::NoEndorsers
        );
    }

    #[test]
    fn nonces_differ_between_transactions() {
        let (mut client, mut e1, _) = setup();
        let a = client
            .create_transaction(&mut [&mut e1], "kv", "put", &["k".into(), "1".into()])
            .unwrap();
        let b = client
            .create_transaction(&mut [&mut e1], "kv", "put", &["k".into(), "1".into()])
            .unwrap();
        assert_ne!(a.tx_id, b.tx_id);
    }
}
