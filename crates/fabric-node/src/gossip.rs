//! Gossip dissemination model (the baseline the BMac protocol replaces).
//!
//! Fabric broadcasts blocks over "a peer-to-peer Gossip protocol ... The
//! Gossip message is then transmitted through gRPC, which uses HTTP/2 and
//! TCP as its transport layer" (paper §2.1.2, Figure 2b). We model the
//! wire overhead of that stack — protobuf wrapping, gRPC/HTTP2 framing,
//! TCP/IP segmentation — and the resulting transmission time over a
//! [`NetLink`], which feeds the Figure 9 comparisons.

use fabric_sim::{NetLink, SimTime};

/// Standard Ethernet MTU used for TCP segmentation.
pub const MTU: usize = 1500;
/// TCP + IP + Ethernet header bytes per segment.
pub const TCP_IP_ETH_HEADERS: usize = 20 + 20 + 18;
/// HTTP/2 frame + gRPC message prefix per data frame.
pub const GRPC_FRAME_OVERHEAD: usize = 9 + 5;
/// Gossip protobuf wrapper (message envelope, channel MAC, nonce).
pub const GOSSIP_WRAPPER: usize = 96;

/// Per-block bytes on the wire when disseminated via Gossip.
///
/// The marshaled block is wrapped in a Gossip message, segmented into
/// gRPC data frames, and carried over TCP/IP/Ethernet.
pub fn gossip_wire_bytes(block_bytes: usize) -> usize {
    let app_bytes = block_bytes + GOSSIP_WRAPPER;
    // One gRPC frame per 16 KiB of payload (HTTP/2 default max frame).
    let frames = app_bytes.div_ceil(16 * 1024);
    let with_frames = app_bytes + frames * GRPC_FRAME_OVERHEAD;
    // TCP segments: MSS = MTU - TCP/IP headers (Ethernet added per frame).
    let mss = MTU - 40;
    let segments = with_frames.div_ceil(mss);
    with_frames + segments * TCP_IP_ETH_HEADERS
}

/// End-to-end Gossip transmission: returns the arrival time of the
/// complete block. TCP delivery is in-order and the receiver must buffer
/// the entire block before processing (paper §3.2 reason 2), so the
/// *usable* arrival is the last byte's arrival.
pub fn gossip_transmit(link: &mut NetLink, ready: SimTime, block_bytes: usize) -> SimTime {
    link.transmit(ready, gossip_wire_bytes(block_bytes))
}

/// Measured fraction of wire bytes that are protocol overhead (not block
/// payload).
pub fn gossip_overhead_fraction(block_bytes: usize) -> f64 {
    let wire = gossip_wire_bytes(block_bytes);
    (wire - block_bytes) as f64 / wire as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::MICROS;

    #[test]
    fn wire_bytes_exceed_payload() {
        for size in [1_000, 100_000, 1_000_000] {
            let wire = gossip_wire_bytes(size);
            assert!(wire > size, "overhead for {size}");
            // Overhead is bounded (< 10%) for large blocks.
            assert!(
                wire < size + size / 10 + 1_000,
                "bounded overhead for {size}"
            );
        }
    }

    /// Truncation-audit regression (the PR 4 class): the segment/frame
    /// counts here are computed in usize space end to end. Pin the exact
    /// wire-byte arithmetic at the u16 boundary, where a narrowing cast
    /// in the segment count would wrap and silently under-report
    /// overhead for multi-megabyte blocks.
    #[test]
    fn wire_byte_arithmetic_is_exact_across_the_u16_boundary() {
        for block_bytes in [65_535usize, 65_536, 100_000_000] {
            let app = block_bytes + GOSSIP_WRAPPER;
            let frames = app.div_ceil(16 * 1024);
            let with_frames = app + frames * GRPC_FRAME_OVERHEAD;
            let segments = with_frames.div_ceil(MTU - 40);
            assert_eq!(
                gossip_wire_bytes(block_bytes),
                with_frames + segments * TCP_IP_ETH_HEADERS,
                "block_bytes={block_bytes}"
            );
            // A 100 MB block needs > 2^16 − 1 TCP segments: the overhead
            // must keep growing linearly, which a u16 segment count
            // could not express.
            if block_bytes == 100_000_000 {
                assert!(segments > usize::from(u16::MAX));
            }
        }
    }

    #[test]
    fn overhead_fraction_shrinks_with_block_size() {
        let small = gossip_overhead_fraction(1_000);
        let large = gossip_overhead_fraction(1_000_000);
        assert!(small > large);
    }

    #[test]
    fn transmission_time_scales_with_size() {
        let mut link = NetLink::gigabit();
        let t1 = gossip_transmit(&mut link, 0, 10_000);
        let mut link2 = NetLink::gigabit();
        let t2 = gossip_transmit(&mut link2, 0, 1_000_000);
        assert!(t2 > t1);
        // ~1 MB at 1 Gbps ≈ 8 ms + latency.
        assert!(t2 > 8_000 * MICROS);
        assert!(t2 < 12_000 * MICROS);
    }
}

/// Dissemination topology: the orderer sends each block to one *lead
/// peer* per organization, which relays it to the other peers of its
/// organization (Fabric's Gossip leader election; the paper's §5 notes
/// the BMac protocol "can also be used by the lead peer to send blocks
/// to other peers in its own organization").
#[derive(Debug)]
pub struct DisseminationModel {
    orderer_links: Vec<NetLink>,
    relay_links: Vec<Vec<NetLink>>,
}

impl DisseminationModel {
    /// Builds a topology with `orgs` organizations of `peers_per_org`
    /// peers each, all links identical to `link`. A single-peer org is
    /// valid — its lone peer is the lead and receives directly over the
    /// orderer link with no intra-org relays.
    ///
    /// # Panics
    ///
    /// Panics on `orgs == 0` or `peers_per_org == 0`: a topology with no
    /// peers has no delivery targets, and silently disseminating into it
    /// would report every block as "delivered everywhere" vacuously.
    pub fn new(orgs: usize, peers_per_org: usize, link: &NetLink) -> Self {
        assert!(orgs > 0, "dissemination topology needs at least one org");
        assert!(
            peers_per_org > 0,
            "dissemination topology needs at least one peer per org \
             (a zero-peer org would make every block vacuously delivered)"
        );
        DisseminationModel {
            orderer_links: vec![link.clone(); orgs],
            relay_links: (0..orgs)
                .map(|_| vec![link.clone(); peers_per_org - 1])
                .collect(),
        }
    }

    /// Disseminates one block of `block_bytes` starting at `ready`;
    /// returns per-peer arrival times as `(org, peer_index, arrival)`
    /// where peer 0 of each org is the lead peer.
    pub fn disseminate(
        &mut self,
        ready: SimTime,
        block_bytes: usize,
    ) -> Vec<(usize, usize, SimTime)> {
        let mut arrivals = Vec::new();
        let wire = gossip_wire_bytes(block_bytes);
        for (org, link) in self.orderer_links.iter_mut().enumerate() {
            let lead_arrival = link.transmit(ready, wire);
            arrivals.push((org, 0, lead_arrival));
            for (peer, relay) in self.relay_links[org].iter_mut().enumerate() {
                let relayed = relay.transmit(lead_arrival, wire);
                arrivals.push((org, peer + 1, relayed));
            }
        }
        arrivals
    }
}

#[cfg(test)]
mod dissemination_tests {
    use super::*;

    #[test]
    fn relayed_peers_receive_after_their_lead() {
        let mut model = DisseminationModel::new(2, 3, &NetLink::gigabit());
        let arrivals = model.disseminate(0, 100_000);
        assert_eq!(arrivals.len(), 6);
        for org in 0..2 {
            let lead = arrivals
                .iter()
                .find(|(o, p, _)| *o == org && *p == 0)
                .unwrap()
                .2;
            for (o, p, t) in &arrivals {
                if *o == org && *p > 0 {
                    assert!(*t > lead, "org {org} peer {p} before its lead");
                }
            }
        }
    }

    #[test]
    fn orgs_receive_independently() {
        let mut model = DisseminationModel::new(3, 1, &NetLink::gigabit());
        let arrivals = model.disseminate(0, 50_000);
        // Separate orderer links: all leads get the same arrival time.
        let times: Vec<SimTime> = arrivals.iter().map(|(_, _, t)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] == w[1]));
    }

    /// Degenerate-org regression: a 1-peer org has no relay fan-out, but
    /// its lone (lead) peer must still receive every block via the
    /// orderer link — exactly one arrival per org, at peer index 0.
    #[test]
    fn single_peer_orgs_deliver_via_the_leader_link() {
        let mut model = DisseminationModel::new(3, 1, &NetLink::gigabit());
        let arrivals = model.disseminate(0, 100_000);
        assert_eq!(arrivals.len(), 3, "one delivery per single-peer org");
        for org in 0..3 {
            let org_arrivals: Vec<_> = arrivals.iter().filter(|(o, _, _)| *o == org).collect();
            assert_eq!(org_arrivals.len(), 1, "org {org} delivered exactly once");
            let (_, peer, at) = org_arrivals[0];
            assert_eq!(*peer, 0, "the lone peer is the lead");
            assert!(*at > 0, "a real transmission takes time");
        }
    }

    #[test]
    #[should_panic(expected = "at least one peer per org")]
    fn zero_peer_orgs_are_rejected_loudly() {
        let _ = DisseminationModel::new(2, 0, &NetLink::gigabit());
    }

    #[test]
    #[should_panic(expected = "at least one org")]
    fn zero_org_topologies_are_rejected_loudly() {
        let _ = DisseminationModel::new(0, 4, &NetLink::gigabit());
    }

    #[test]
    fn back_to_back_blocks_queue_on_links() {
        let mut model = DisseminationModel::new(1, 2, &NetLink::gigabit());
        let first = model.disseminate(0, 500_000);
        let second = model.disseminate(0, 500_000);
        assert!(
            second[0].2 > first[0].2,
            "second block queues behind the first"
        );
    }
}
