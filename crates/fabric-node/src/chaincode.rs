//! Chaincode (smart contract) execution interface.
//!
//! "Transactions invoke smart contracts or chaincodes, which represent
//! the business logic and are instantiated on the endorser peers" (paper
//! §2.1.1). A chaincode here is a deterministic function from invocation
//! arguments and the current state to a read set (keys + observed
//! versions) and a write set — exactly what endorsement simulation
//! produces.

use std::collections::HashMap;
use std::fmt;

use fabric_statedb::{Height, StateDb};

/// Read set entry: key plus the version observed at simulation time.
pub type SimRead = (String, Option<Height>);
/// Write set entry: key plus new value.
pub type SimWrite = (String, Vec<u8>);

/// Result of simulating a transaction on an endorser.
#[derive(Debug, Clone, Default)]
pub struct SimulationResult {
    /// Keys read with their observed versions.
    pub reads: Vec<SimRead>,
    /// Keys written with new values.
    pub writes: Vec<SimWrite>,
}

/// Errors raised by chaincode execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaincodeError {
    /// The function name is not exported by this chaincode.
    UnknownFunction(String),
    /// Wrong number or shape of arguments.
    BadArguments(String),
    /// Business-logic failure (e.g. insufficient funds).
    Aborted(String),
}

impl fmt::Display for ChaincodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaincodeError::UnknownFunction(name) => write!(f, "unknown function {name}"),
            ChaincodeError::BadArguments(why) => write!(f, "bad arguments: {why}"),
            ChaincodeError::Aborted(why) => write!(f, "chaincode aborted: {why}"),
        }
    }
}

impl std::error::Error for ChaincodeError {}

/// A deterministic smart contract.
///
/// Implementations read through the provided [`StateDb`] and record every
/// access in the returned [`SimulationResult`]; they must not mutate the
/// database (writes land only at validation/commit).
pub trait Chaincode: Send + Sync {
    /// The chaincode name (rwset namespace).
    fn name(&self) -> &str;

    /// Simulates `function(args)` against `db`.
    ///
    /// # Errors
    ///
    /// Returns [`ChaincodeError`] when the invocation is malformed or the
    /// business logic rejects it.
    fn execute(
        &self,
        function: &str,
        args: &[String],
        db: &StateDb,
    ) -> Result<SimulationResult, ChaincodeError>;
}

/// Registry mapping chaincode names to instances (a peer can instantiate
/// several chaincodes).
#[derive(Default)]
pub struct ChaincodeRegistry {
    by_name: HashMap<String, Box<dyn Chaincode>>,
}

impl ChaincodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ChaincodeRegistry::default()
    }

    /// Installs a chaincode; replaces any previous instance of the same
    /// name and returns it.
    pub fn install(&mut self, cc: Box<dyn Chaincode>) -> Option<Box<dyn Chaincode>> {
        self.by_name.insert(cc.name().to_string(), cc)
    }

    /// Looks up a chaincode.
    pub fn get(&self, name: &str) -> Option<&dyn Chaincode> {
        self.by_name.get(name).map(|b| b.as_ref())
    }

    /// Installed chaincode names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.by_name.keys().cloned().collect();
        names.sort();
        names
    }
}

impl fmt::Debug for ChaincodeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChaincodeRegistry({:?})", self.names())
    }
}

/// A trivial key-value chaincode used in tests and the quickstart
/// example: `put k v`, `get k`, `transfer a b amount` on u64 balances.
#[derive(Debug, Default)]
pub struct KvChaincode {
    name: String,
}

impl KvChaincode {
    /// Creates the chaincode under the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KvChaincode { name: name.into() }
    }
}

impl Chaincode for KvChaincode {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(
        &self,
        function: &str,
        args: &[String],
        db: &StateDb,
    ) -> Result<SimulationResult, ChaincodeError> {
        let mut result = SimulationResult::default();
        match function {
            "put" => {
                let [key, value] = args else {
                    return Err(ChaincodeError::BadArguments("put k v".into()));
                };
                result.reads.push((key.clone(), db.get_version(key)));
                result.writes.push((key.clone(), value.as_bytes().to_vec()));
            }
            "get" => {
                let [key] = args else {
                    return Err(ChaincodeError::BadArguments("get k".into()));
                };
                result.reads.push((key.clone(), db.get_version(key)));
            }
            "transfer" => {
                let [from, to, amount] = args else {
                    return Err(ChaincodeError::BadArguments("transfer a b amount".into()));
                };
                let amount: u64 = amount
                    .parse()
                    .map_err(|_| ChaincodeError::BadArguments("amount must be u64".into()))?;
                let from_val = db.get(from);
                let to_val = db.get(to);
                let from_bal = parse_balance(from_val.as_ref().map(|v| v.value.as_slice()));
                let to_bal = parse_balance(to_val.as_ref().map(|v| v.value.as_slice()));
                if from_bal < amount {
                    return Err(ChaincodeError::Aborted(format!(
                        "insufficient funds: {from_bal} < {amount}"
                    )));
                }
                result
                    .reads
                    .push((from.clone(), from_val.map(|v| v.version)));
                result.reads.push((to.clone(), to_val.map(|v| v.version)));
                result
                    .writes
                    .push((from.clone(), (from_bal - amount).to_string().into_bytes()));
                result
                    .writes
                    .push((to.clone(), (to_bal + amount).to_string().into_bytes()));
            }
            other => return Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
        Ok(result)
    }
}

/// Parses a decimal balance, treating missing/garbage as zero (matching
/// the smallbank benchmark's forgiving reads).
pub fn parse_balance(value: Option<&[u8]>) -> u64 {
    value
        .and_then(|v| std::str::from_utf8(v).ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::WriteBatch;

    #[test]
    fn kv_put_reads_version_and_writes() {
        let db = StateDb::new();
        let cc = KvChaincode::new("kv");
        let r = cc.execute("put", &["a".into(), "1".into()], &db).unwrap();
        assert_eq!(r.reads, vec![("a".to_string(), None)]);
        assert_eq!(r.writes.len(), 1);
    }

    #[test]
    fn kv_transfer_moves_balance() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("alice", b"100".to_vec());
        b.put("bob", b"50".to_vec());
        db.apply(&b, Height::new(1, 0));
        let cc = KvChaincode::new("kv");
        let r = cc
            .execute(
                "transfer",
                &["alice".into(), "bob".into(), "30".into()],
                &db,
            )
            .unwrap();
        assert_eq!(r.writes[0].1, b"70".to_vec());
        assert_eq!(r.writes[1].1, b"80".to_vec());
        assert_eq!(r.reads.len(), 2);
    }

    #[test]
    fn kv_transfer_insufficient_funds_aborts() {
        let db = StateDb::new();
        let cc = KvChaincode::new("kv");
        let err = cc
            .execute("transfer", &["a".into(), "b".into(), "1".into()], &db)
            .unwrap_err();
        assert!(matches!(err, ChaincodeError::Aborted(_)));
    }

    #[test]
    fn kv_rejects_unknown_function_and_bad_args() {
        let db = StateDb::new();
        let cc = KvChaincode::new("kv");
        assert!(matches!(
            cc.execute("mint", &[], &db).unwrap_err(),
            ChaincodeError::UnknownFunction(_)
        ));
        assert!(matches!(
            cc.execute("put", &["only-key".into()], &db).unwrap_err(),
            ChaincodeError::BadArguments(_)
        ));
    }

    #[test]
    fn registry_install_and_lookup() {
        let mut reg = ChaincodeRegistry::new();
        reg.install(Box::new(KvChaincode::new("kv")));
        assert!(reg.get("kv").is_some());
        assert!(reg.get("other").is_none());
        assert_eq!(reg.names(), vec!["kv"]);
        // Reinstall replaces.
        let old = reg.install(Box::new(KvChaincode::new("kv")));
        assert!(old.is_some());
    }

    #[test]
    fn parse_balance_tolerates_garbage() {
        assert_eq!(parse_balance(None), 0);
        assert_eq!(parse_balance(Some(b"123")), 123);
        assert_eq!(parse_balance(Some(b"bogus")), 0);
    }
}
