//! Append-only block ledger with index, hash chain and history database.
//!
//! The final step of validation "commits the block ... the entire block is
//! written to the ledger with its transactions' valid/invalid flags and a
//! commit hash. ... Internally, the ledger commit writes the block to a
//! file and updates the block index (stored in an internal database, and
//! used for checking duplicates)" (paper §2.1.2/§2.1.3). The paper keeps
//! ledger commit on the CPU in both peers — it is I/O-bound — so both the
//! software validator and the BMac peer share this implementation.
//!
//! # Pluggable block stores
//!
//! Where committed blocks physically live is behind the [`BlockStore`]
//! trait, following the crate convention set by the crypto backends: the
//! in-memory [`MemoryBlockStore`] is the default *and* the differential
//! oracle, and a durable implementation (`fabric-store`'s segmented
//! store) plugs in via [`Ledger::with_store`]. Opening a ledger over an
//! existing store is a *recovery*: the tx index and history database are
//! rebuilt from the stored blocks and the whole hash chain — header
//! links, data hashes, and the running commit hash — is re-verified, so
//! a corrupted stored block is rejected at reopen with its block number.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use fabric_crypto::sha256::Sha256;
use fabric_protos::messages::{metadata_index, Block};
use fabric_protos::txflow::{block_header_hash, decode_block_struct, hash_block_data};
use parking_lot::Mutex;

/// Transaction validation codes stored in the block's transactions filter
/// (a subset of Fabric's `peer.TxValidationCode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxValidationCode {
    /// Transaction is valid and its writes were committed.
    Valid,
    /// A signature failed verification.
    BadSignature,
    /// The endorsement policy was not satisfied.
    EndorsementPolicyFailure,
    /// An MVCC read conflict invalidated the transaction.
    MvccReadConflict,
    /// The envelope could not be decoded.
    BadPayload,
}

impl TxValidationCode {
    /// Byte value stored in the transactions filter (matching Fabric's
    /// numeric codes where they exist).
    pub fn code(self) -> u8 {
        match self {
            TxValidationCode::Valid => 0,
            TxValidationCode::BadPayload => 2,
            TxValidationCode::BadSignature => 4,
            TxValidationCode::EndorsementPolicyFailure => 10,
            TxValidationCode::MvccReadConflict => 11,
        }
    }

    /// Inverse of [`TxValidationCode::code`], used when reconstructing
    /// validation flags from a stored transactions filter.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => TxValidationCode::Valid,
            2 => TxValidationCode::BadPayload,
            4 => TxValidationCode::BadSignature,
            10 => TxValidationCode::EndorsementPolicyFailure,
            11 => TxValidationCode::MvccReadConflict,
            _ => return None,
        })
    }

    /// Whether this code marks the transaction valid.
    pub fn is_valid(self) -> bool {
        self == TxValidationCode::Valid
    }
}

/// A committed block with its validation results.
#[derive(Debug, Clone)]
pub struct CommittedBlock {
    /// The block, with metadata slots filled in at commit.
    pub block: Block,
    /// Hash of the block header.
    pub header_hash: [u8; 32],
    /// Per-transaction validation flags.
    pub tx_filter: Vec<TxValidationCode>,
    /// Running commit hash after this block.
    pub commit_hash: [u8; 32],
}

impl CommittedBlock {
    /// Reconstructs a committed block from a block whose metadata was
    /// already stamped by [`Ledger::commit_block`] — the shape a durable
    /// store reads back from disk (only the marshaled block is
    /// persisted; filter, commit hash and header hash are re-derived).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the metadata slots do not carry a decodable
    /// filter or a 32-byte commit hash.
    pub fn from_stamped_block(block: Block) -> Result<Self, StoreError> {
        let filter_bytes = &block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER];
        if filter_bytes.len() != block.data.data.len() {
            return Err(StoreError::new("stored filter length != tx count"));
        }
        let tx_filter = filter_bytes
            .iter()
            .map(|&b| TxValidationCode::from_code(b))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| StoreError::new("stored filter carries an unknown code"))?;
        let commit_hash: [u8; 32] = block.metadata.metadata[metadata_index::COMMIT_HASH]
            .as_slice()
            .try_into()
            .map_err(|_| StoreError::new("stored commit hash is not 32 bytes"))?;
        let header_hash = block_header_hash(&block.header);
        Ok(CommittedBlock {
            block,
            header_hash,
            tx_filter,
            commit_hash,
        })
    }
}

/// A block-store failure (I/O, framing, serialization). Carried inside
/// [`LedgerError::Store`]; the message is diagnostic, not programmatic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(String);

impl StoreError {
    /// Wraps a diagnostic message.
    pub fn new(msg: impl Into<String>) -> Self {
        StoreError(msg.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

/// Physical storage of committed blocks, append-only and numbered from
/// zero. Implementations: [`MemoryBlockStore`] (default, also the
/// differential oracle for the durable backend) and `fabric-store`'s
/// segmented on-disk store.
pub trait BlockStore: Send + fmt::Debug {
    /// Number of stored blocks (the chain height).
    fn len(&self) -> u64;

    /// Whether the store holds no blocks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a block by number. `None` for out-of-range numbers *and*
    /// for records that fail integrity checks — [`Ledger::with_store`]
    /// turns a `None` inside the valid range into
    /// [`LedgerError::Corrupt`] with the block number.
    fn get(&self, number: u64) -> Option<CommittedBlock>;

    /// Appends the next block. The caller ([`Ledger`]) guarantees
    /// `block.block.header.number == self.len()`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on write failure.
    fn append(&mut self, block: &CommittedBlock) -> Result<(), StoreError>;

    /// Forces buffered writes down to the backing medium (group-commit
    /// boundary; a no-op for memory stores).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on write failure.
    fn flush(&mut self) -> Result<(), StoreError>;
}

/// The default in-memory block store.
#[derive(Debug, Default)]
pub struct MemoryBlockStore {
    blocks: Vec<CommittedBlock>,
}

impl MemoryBlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryBlockStore::default()
    }
}

impl BlockStore for MemoryBlockStore {
    fn len(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn get(&self, number: u64) -> Option<CommittedBlock> {
        self.blocks.get(number as usize).cloned()
    }

    fn append(&mut self, block: &CommittedBlock) -> Result<(), StoreError> {
        self.blocks.push(block.clone());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// Errors appending to (or recovering) the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The block number is not `height()`.
    OutOfOrder {
        /// Expected next block number.
        expected: u64,
        /// Number of the rejected block.
        got: u64,
    },
    /// `previous_hash` does not match the chain tip.
    BrokenChain,
    /// A block with this number was already committed.
    Duplicate(u64),
    /// The tx filter length does not match the block's tx count.
    FilterMismatch,
    /// The underlying block store failed.
    Store(StoreError),
    /// A stored block failed integrity verification at recovery: hash
    /// chain, data hash, commit-hash chain, or record-level checks.
    Corrupt {
        /// Number of the offending block.
        block: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::OutOfOrder { expected, got } => {
                write!(f, "expected block {expected}, got {got}")
            }
            LedgerError::BrokenChain => write!(f, "previous_hash does not match chain tip"),
            LedgerError::Duplicate(n) => write!(f, "duplicate block {n}"),
            LedgerError::FilterMismatch => {
                write!(
                    f,
                    "validation filter length does not match transaction count"
                )
            }
            LedgerError::Store(e) => write!(f, "{e}"),
            LedgerError::Corrupt { block } => {
                write!(f, "stored block {block} failed integrity verification")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<StoreError> for LedgerError {
    fn from(e: StoreError) -> Self {
        LedgerError::Store(e)
    }
}

/// Cached facts about the chain tip so commits never re-read the store.
#[derive(Debug, Clone, Copy)]
struct TipInfo {
    header_hash: [u8; 32],
    commit_hash: [u8; 32],
}

/// The append-only block store + index. Thread-safe and cheaply clonable
/// (clones share the chain).
#[derive(Debug, Clone)]
pub struct Ledger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger {
            inner: Arc::new(Mutex::named(
                "ledger.inner",
                LedgerInner {
                    store: Box::new(MemoryBlockStore::new()),
                    tip: None,
                    tx_index: HashMap::new(),
                    history: HistoryDb::new(),
                },
            )),
        }
    }
}

#[derive(Debug)]
struct LedgerInner {
    store: Box<dyn BlockStore>,
    tip: Option<TipInfo>,
    /// Block index: tx_id -> (block number, tx index); used for duplicate
    /// detection on commit.
    tx_index: HashMap<String, (u64, usize)>,
    history: HistoryDb,
}

impl Ledger {
    /// Creates an empty in-memory ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Opens a ledger over an existing block store — the recovery path.
    ///
    /// Every stored block is decoded and the whole chain re-verified
    /// (header-hash links, data hashes, and the running commit hash)
    /// while the tx index and history database are rebuilt, so a bad
    /// block is pinned to its number instead of surfacing later as a
    /// mystery chain break.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Corrupt`] with the offending block number when a
    /// stored block is missing, undecodable, or fails any chain check.
    pub fn with_store(store: Box<dyn BlockStore>) -> Result<Self, LedgerError> {
        let mut tx_index = HashMap::new();
        let mut history = HistoryDb::new();
        let mut tip: Option<TipInfo> = None;
        let mut prev_header = [0u8; 32];
        let mut prev_commit = [0u8; 32];
        for number in 0..store.len() {
            let corrupt = || LedgerError::Corrupt { block: number };
            let cb = store.get(number).ok_or_else(corrupt)?;
            (prev_header, prev_commit) =
                verify_stored_block(number, &prev_header, &prev_commit, &cb)
                    .map_err(|block| LedgerError::Corrupt { block })?;
            let block = &cb.block;
            let decoded =
                decode_block_struct(block, block.marshal().len()).map_err(|_| corrupt())?;
            if decoded.txs.len() != cb.tx_filter.len() {
                return Err(corrupt());
            }
            for (i, tx) in decoded.txs.iter().enumerate() {
                tx_index.insert(tx.tx_id.clone(), (number, i));
                if cb.tx_filter[i] == TxValidationCode::Valid {
                    for (key, _) in &tx.writes {
                        history.record(key, number, i as u64);
                    }
                }
            }
            tip = Some(TipInfo {
                header_hash: cb.header_hash,
                commit_hash: cb.commit_hash,
            });
        }
        Ok(Ledger {
            inner: Arc::new(Mutex::named(
                "ledger.inner",
                LedgerInner {
                    store,
                    tip,
                    tx_index,
                    history,
                },
            )),
        })
    }

    /// Current chain height (number of the next block).
    pub fn height(&self) -> u64 {
        self.inner.lock().store.len()
    }

    /// Number of the next block this ledger will accept — the streaming
    /// validator's reorder buffer starts its sequence here so a stream
    /// can resume an existing chain.
    pub fn next_block_number(&self) -> u64 {
        self.height()
    }

    /// Hash of the chain tip's header, or zeros for an empty chain.
    pub fn tip_hash(&self) -> [u8; 32] {
        let g = self.inner.lock();
        g.tip.map(|t| t.header_hash).unwrap_or([0u8; 32])
    }

    /// Running commit hash at the tip (zeros for an empty chain).
    pub fn tip_commit_hash(&self) -> [u8; 32] {
        let g = self.inner.lock();
        g.tip.map(|t| t.commit_hash).unwrap_or([0u8; 32])
    }

    /// Commits a validated block: stamps the transactions filter and
    /// commit hash into the metadata, indexes tx ids, and appends.
    ///
    /// `tx_ids` pairs with `tx_filter` index-by-index and is used to build
    /// the duplicate-detection index and the history database.
    ///
    /// # Errors
    ///
    /// Any [`LedgerError`] variant: out-of-order blocks, chain breaks,
    /// duplicates, a filter length mismatch, or a store write failure.
    pub fn commit_block(
        &self,
        mut block: Block,
        tx_ids: &[String],
        tx_filter: Vec<TxValidationCode>,
        modified_keys: &[Vec<String>],
    ) -> Result<CommittedBlock, LedgerError> {
        let mut g = self.inner.lock();
        let expected = g.store.len();
        if block.header.number != expected {
            return Err(if block.header.number < expected {
                LedgerError::Duplicate(block.header.number)
            } else {
                LedgerError::OutOfOrder {
                    expected,
                    got: block.header.number,
                }
            });
        }
        let tip_hash = g.tip.map(|t| t.header_hash).unwrap_or([0u8; 32]);
        if block.header.previous_hash != tip_hash {
            return Err(LedgerError::BrokenChain);
        }
        if tx_filter.len() != block.data.data.len() || tx_ids.len() != tx_filter.len() {
            return Err(LedgerError::FilterMismatch);
        }

        let filter_bytes: Vec<u8> = tx_filter.iter().map(|c| c.code()).collect();
        let prev_commit = g.tip.map(|t| t.commit_hash).unwrap_or([0u8; 32]);
        let commit_hash = compute_commit_hash(&prev_commit, &block, &filter_bytes);
        block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER] = filter_bytes;
        block.metadata.metadata[metadata_index::COMMIT_HASH] = commit_hash.to_vec();

        let header_hash = block_header_hash(&block.header);
        let committed = CommittedBlock {
            block,
            header_hash,
            tx_filter,
            commit_hash,
        };
        // Store write first: if it fails the indexes stay untouched and
        // the commit is cleanly rejected.
        g.store.append(&committed)?;
        for (i, tx_id) in tx_ids.iter().enumerate() {
            g.tx_index.insert(tx_id.clone(), (expected, i));
        }
        for (i, keys) in modified_keys.iter().enumerate() {
            if committed.tx_filter[i] == TxValidationCode::Valid {
                for key in keys {
                    g.history.record(key, expected, i as u64);
                }
            }
        }
        g.tip = Some(TipInfo {
            header_hash,
            commit_hash,
        });
        Ok(committed)
    }

    /// Fetches a committed block by number.
    pub fn block(&self, number: u64) -> Option<CommittedBlock> {
        self.inner.lock().store.get(number)
    }

    /// Looks up which block and position committed `tx_id` (the duplicate
    /// check of ledger commit).
    pub fn find_tx(&self, tx_id: &str) -> Option<(u64, usize)> {
        self.inner.lock().tx_index.get(tx_id).copied()
    }

    /// Returns the modification history `(block, tx)` for a state key.
    pub fn key_history(&self, key: &str) -> Vec<(u64, u64)> {
        self.inner.lock().history.of(key)
    }

    /// Flushes the underlying block store (the durable group-commit
    /// boundary; a no-op for the in-memory store).
    ///
    /// # Errors
    ///
    /// [`LedgerError::Store`] on write failure.
    pub fn flush(&self) -> Result<(), LedgerError> {
        self.inner.lock().store.flush().map_err(LedgerError::Store)
    }

    /// Verifies the whole chain — header-hash links, data hashes, and
    /// the running commit hash — and returns the first bad block. The
    /// per-block check is [`verify_stored_block`], the same one
    /// [`Ledger::with_store`] runs (with index rebuilding) at recovery.
    pub fn verify_chain(&self) -> Result<(), u64> {
        let g = self.inner.lock();
        let mut prev_header = [0u8; 32];
        let mut prev_commit = [0u8; 32];
        for number in 0..g.store.len() {
            let cb = g.store.get(number).ok_or(number)?;
            (prev_header, prev_commit) =
                verify_stored_block(number, &prev_header, &prev_commit, &cb)?;
        }
        Ok(())
    }
}

/// Verifies one stored block against the chain cursor: header number,
/// previous-hash link, data hash, recomputed header hash, and the
/// running commit hash (both the recomputation and the stamped
/// metadata slots). Shared by [`Ledger::with_store`] and
/// [`Ledger::verify_chain`] so the recovery and audit paths can never
/// drift apart. Returns the `(header_hash, commit_hash)` cursor for
/// the next block, or the offending block number.
fn verify_stored_block(
    number: u64,
    prev_header: &[u8; 32],
    prev_commit: &[u8; 32],
    cb: &CommittedBlock,
) -> Result<([u8; 32], [u8; 32]), u64> {
    let block = &cb.block;
    if block.header.number != number
        || block.header.previous_hash != *prev_header
        || block.header.data_hash != hash_block_data(&block.data)
    {
        return Err(number);
    }
    if block_header_hash(&block.header) != cb.header_hash {
        return Err(number);
    }
    let filter_bytes: Vec<u8> = cb.tx_filter.iter().map(|c| c.code()).collect();
    let commit_hash = compute_commit_hash(prev_commit, block, &filter_bytes);
    if commit_hash != cb.commit_hash
        || block.metadata.metadata[metadata_index::COMMIT_HASH] != commit_hash
        || block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER] != filter_bytes
    {
        return Err(number);
    }
    Ok((cb.header_hash, cb.commit_hash))
}

/// Running commit hash: `sha256(prev ++ header ++ filter)`. Both peer
/// implementations must agree on it — the paper used commit-hash equality
/// to confirm BMac did not alter validation behaviour (§4.1).
pub fn compute_commit_hash(prev: &[u8; 32], block: &Block, filter: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&block.header.marshal());
    h.update(filter);
    h.finalize()
}

/// Tracks "which keys have been modified by which blocks and
/// transactions" (paper §2.1.2 step 5).
#[derive(Debug, Default)]
pub struct HistoryDb {
    entries: HashMap<String, Vec<(u64, u64)>>,
}

impl HistoryDb {
    /// Creates an empty history database.
    pub fn new() -> Self {
        HistoryDb::default()
    }

    /// Records that `key` was modified by `(block, tx)`.
    pub fn record(&mut self, key: &str, block: u64, tx: u64) {
        self.entries
            .entry(key.to_string())
            .or_default()
            .push((block, tx));
    }

    /// All modifications of `key`, oldest first.
    pub fn of(&self, key: &str) -> Vec<(u64, u64)> {
        self.entries.get(key).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::{Msp, Role};
    use fabric_protos::txflow::{build_block, build_transaction, TxParams};

    fn make_block(number: u64, prev: [u8; 32], ntx: usize) -> (Block, Vec<String>) {
        let mut msp = Msp::new(1);
        let client = msp.issue(0, Role::Client, 0).unwrap();
        let endorser = msp.issue(0, Role::Peer, 0).unwrap();
        let orderer = msp.issue(0, Role::Orderer, 0).unwrap();
        let mut envs = Vec::new();
        let mut ids = Vec::new();
        for i in 0..ntx {
            let built = build_transaction(
                &client,
                &[&endorser],
                &TxParams {
                    channel_id: "ch",
                    chaincode: "cc",
                    reads: vec![],
                    writes: vec![(format!("k{number}_{i}"), vec![1])],
                    nonce: vec![number as u8, i as u8],
                    timestamp: 0,
                },
            );
            envs.push(built.envelope);
            ids.push(built.tx_id);
        }
        (build_block(number, &prev, envs, &orderer), ids)
    }

    #[test]
    fn commit_and_fetch() {
        let ledger = Ledger::new();
        let (block, ids) = make_block(0, [0u8; 32], 2);
        let committed = ledger
            .commit_block(
                block,
                &ids,
                vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict],
                &[vec!["k0_0".into()], vec!["k0_1".into()]],
            )
            .unwrap();
        assert_eq!(ledger.height(), 1);
        assert_eq!(ledger.tip_hash(), committed.header_hash);
        let fetched = ledger.block(0).unwrap();
        assert_eq!(
            fetched.block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER],
            vec![0u8, 11]
        );
    }

    #[test]
    fn duplicate_and_out_of_order_rejected() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 1);
        ledger
            .commit_block(b0.clone(), &ids, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        assert_eq!(
            ledger
                .commit_block(b0, &ids, vec![TxValidationCode::Valid], &[vec![]])
                .unwrap_err(),
            LedgerError::Duplicate(0)
        );
        let (b5, ids5) = make_block(5, ledger.tip_hash(), 1);
        assert_eq!(
            ledger
                .commit_block(b5, &ids5, vec![TxValidationCode::Valid], &[vec![]])
                .unwrap_err(),
            LedgerError::OutOfOrder {
                expected: 1,
                got: 5
            }
        );
    }

    #[test]
    fn chain_break_rejected() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 1);
        ledger
            .commit_block(b0, &ids, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        let (b1_bad, ids1) = make_block(1, [9u8; 32], 1);
        assert_eq!(
            ledger
                .commit_block(b1_bad, &ids1, vec![TxValidationCode::Valid], &[vec![]])
                .unwrap_err(),
            LedgerError::BrokenChain
        );
    }

    #[test]
    fn filter_mismatch_rejected() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 2);
        assert_eq!(
            ledger
                .commit_block(b0, &ids, vec![TxValidationCode::Valid], &[vec![], vec![]])
                .unwrap_err(),
            LedgerError::FilterMismatch
        );
    }

    #[test]
    fn tx_index_finds_transactions() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 3);
        ledger
            .commit_block(
                b0,
                &ids,
                vec![TxValidationCode::Valid; 3],
                &[vec![], vec![], vec![]],
            )
            .unwrap();
        assert_eq!(ledger.find_tx(&ids[1]), Some((0, 1)));
        assert_eq!(ledger.find_tx("nope"), None);
    }

    #[test]
    fn commit_hash_chains() {
        let ledger = Ledger::new();
        let (b0, ids0) = make_block(0, [0u8; 32], 1);
        let c0 = ledger
            .commit_block(b0, &ids0, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        let (b1, ids1) = make_block(1, ledger.tip_hash(), 1);
        let c1 = ledger
            .commit_block(b1, &ids1, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        assert_ne!(c0.commit_hash, c1.commit_hash);
        assert_eq!(ledger.tip_commit_hash(), c1.commit_hash);
        assert!(ledger.verify_chain().is_ok());
    }

    #[test]
    fn history_records_only_valid_txs() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 2);
        ledger
            .commit_block(
                b0,
                &ids,
                vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict],
                &[vec!["a".into()], vec!["b".into()]],
            )
            .unwrap();
        assert_eq!(ledger.key_history("a"), vec![(0, 0)]);
        assert!(ledger.key_history("b").is_empty());
    }

    /// Builds a two-block chain and returns its memory store.
    fn committed_two_block_store() -> (MemoryBlockStore, Ledger) {
        let ledger = Ledger::new();
        let (b0, ids0) = make_block(0, [0u8; 32], 2);
        ledger
            .commit_block(
                b0,
                &ids0,
                vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict],
                &[vec!["k0_0".into()], vec!["k0_1".into()]],
            )
            .unwrap();
        let (b1, ids1) = make_block(1, ledger.tip_hash(), 1);
        ledger
            .commit_block(
                b1,
                &ids1,
                vec![TxValidationCode::Valid],
                &[vec!["k1_0".into()]],
            )
            .unwrap();
        let mut store = MemoryBlockStore::new();
        for n in 0..ledger.height() {
            store.append(&ledger.block(n).unwrap()).unwrap();
        }
        (store, ledger)
    }

    #[test]
    fn with_store_rebuilds_indexes_and_tip() {
        let (store, original) = committed_two_block_store();
        let reopened = Ledger::with_store(Box::new(store)).unwrap();
        assert_eq!(reopened.height(), 2);
        assert_eq!(reopened.tip_hash(), original.tip_hash());
        assert_eq!(reopened.tip_commit_hash(), original.tip_commit_hash());
        // tx index and history were rebuilt from the stored blocks.
        let decoded =
            fabric_protos::txflow::decode_block(&original.block(1).unwrap().block.marshal())
                .unwrap();
        assert_eq!(
            reopened.find_tx(&decoded.txs[0].tx_id),
            Some((1, 0)),
            "tx index rebuilt"
        );
        assert_eq!(reopened.key_history("k1_0"), vec![(1, 0)]);
        // Invalid tx of block 0 must NOT be in history.
        assert!(reopened.key_history("k0_1").is_empty());
        assert!(reopened.verify_chain().is_ok());
        // And the reopened chain keeps accepting blocks.
        let (b2, ids2) = make_block(2, reopened.tip_hash(), 1);
        reopened
            .commit_block(b2, &ids2, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        assert_eq!(reopened.height(), 3);
    }

    #[test]
    fn with_store_rejects_tampered_block_with_its_number() {
        let (mut store, _) = committed_two_block_store();
        // Flip one byte inside block 1's first envelope: the data hash
        // no longer matches, and recovery must name block 1.
        store.blocks[1].block.data.data[0][0] ^= 0x40;
        match Ledger::with_store(Box::new(store)) {
            Err(LedgerError::Corrupt { block }) => assert_eq!(block, 1),
            other => panic!("expected Corrupt{{block: 1}}, got {other:?}"),
        }
    }

    #[test]
    fn with_store_rejects_tampered_filter_with_its_number() {
        let (mut store, _) = committed_two_block_store();
        // Flip a validation flag: the commit-hash chain breaks at block 0.
        store.blocks[0].tx_filter[1] = TxValidationCode::Valid;
        store.blocks[0].block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER] =
            vec![0u8, 0u8];
        match Ledger::with_store(Box::new(store)) {
            Err(LedgerError::Corrupt { block }) => assert_eq!(block, 0),
            other => panic!("expected Corrupt{{block: 0}}, got {other:?}"),
        }
    }

    #[test]
    fn stamped_block_roundtrips_committed_block() {
        let (store, _) = committed_two_block_store();
        for n in 0..store.len() {
            let cb = store.get(n).unwrap();
            let rebuilt = CommittedBlock::from_stamped_block(cb.block.clone()).unwrap();
            assert_eq!(rebuilt.header_hash, cb.header_hash);
            assert_eq!(rebuilt.tx_filter, cb.tx_filter);
            assert_eq!(rebuilt.commit_hash, cb.commit_hash);
        }
    }

    #[test]
    fn validation_codes_roundtrip_through_bytes() {
        for code in [
            TxValidationCode::Valid,
            TxValidationCode::BadPayload,
            TxValidationCode::BadSignature,
            TxValidationCode::EndorsementPolicyFailure,
            TxValidationCode::MvccReadConflict,
        ] {
            assert_eq!(TxValidationCode::from_code(code.code()), Some(code));
        }
        assert_eq!(TxValidationCode::from_code(255), None);
    }
}
