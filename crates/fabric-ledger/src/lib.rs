//! Append-only block ledger with index, hash chain and history database.
//!
//! The final step of validation "commits the block ... the entire block is
//! written to the ledger with its transactions' valid/invalid flags and a
//! commit hash. ... Internally, the ledger commit writes the block to a
//! file and updates the block index (stored in an internal database, and
//! used for checking duplicates)" (paper §2.1.2/§2.1.3). The paper keeps
//! ledger commit on the CPU in both peers — it is I/O-bound — so both the
//! software validator and the BMac peer share this implementation.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use fabric_crypto::sha256::Sha256;
use fabric_protos::messages::{metadata_index, Block};
use fabric_protos::txflow::block_header_hash;
use parking_lot::Mutex;

/// Transaction validation codes stored in the block's transactions filter
/// (a subset of Fabric's `peer.TxValidationCode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxValidationCode {
    /// Transaction is valid and its writes were committed.
    Valid,
    /// A signature failed verification.
    BadSignature,
    /// The endorsement policy was not satisfied.
    EndorsementPolicyFailure,
    /// An MVCC read conflict invalidated the transaction.
    MvccReadConflict,
    /// The envelope could not be decoded.
    BadPayload,
}

impl TxValidationCode {
    /// Byte value stored in the transactions filter (matching Fabric's
    /// numeric codes where they exist).
    pub fn code(self) -> u8 {
        match self {
            TxValidationCode::Valid => 0,
            TxValidationCode::BadPayload => 2,
            TxValidationCode::BadSignature => 4,
            TxValidationCode::EndorsementPolicyFailure => 10,
            TxValidationCode::MvccReadConflict => 11,
        }
    }

    /// Whether this code marks the transaction valid.
    pub fn is_valid(self) -> bool {
        self == TxValidationCode::Valid
    }
}

/// A committed block with its validation results.
#[derive(Debug, Clone)]
pub struct CommittedBlock {
    /// The block, with metadata slots filled in at commit.
    pub block: Block,
    /// Hash of the block header.
    pub header_hash: [u8; 32],
    /// Per-transaction validation flags.
    pub tx_filter: Vec<TxValidationCode>,
    /// Running commit hash after this block.
    pub commit_hash: [u8; 32],
}

/// Errors appending to the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The block number is not `height()`.
    OutOfOrder {
        /// Expected next block number.
        expected: u64,
        /// Number of the rejected block.
        got: u64,
    },
    /// `previous_hash` does not match the chain tip.
    BrokenChain,
    /// A block with this number was already committed.
    Duplicate(u64),
    /// The tx filter length does not match the block's tx count.
    FilterMismatch,
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::OutOfOrder { expected, got } => {
                write!(f, "expected block {expected}, got {got}")
            }
            LedgerError::BrokenChain => write!(f, "previous_hash does not match chain tip"),
            LedgerError::Duplicate(n) => write!(f, "duplicate block {n}"),
            LedgerError::FilterMismatch => {
                write!(
                    f,
                    "validation filter length does not match transaction count"
                )
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// The append-only block store + index. Thread-safe and cheaply clonable
/// (clones share the chain).
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    inner: Arc<Mutex<LedgerInner>>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    blocks: Vec<CommittedBlock>,
    /// Block index: tx_id -> (block number, tx index); used for duplicate
    /// detection on commit.
    tx_index: HashMap<String, (u64, usize)>,
    history: HistoryDb,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Current chain height (number of the next block).
    pub fn height(&self) -> u64 {
        self.inner.lock().blocks.len() as u64
    }

    /// Number of the next block this ledger will accept — the streaming
    /// validator's reorder buffer starts its sequence here so a stream
    /// can resume an existing chain.
    pub fn next_block_number(&self) -> u64 {
        self.height()
    }

    /// Hash of the chain tip's header, or zeros for an empty chain.
    pub fn tip_hash(&self) -> [u8; 32] {
        let g = self.inner.lock();
        g.blocks.last().map(|b| b.header_hash).unwrap_or([0u8; 32])
    }

    /// Running commit hash at the tip (zeros for an empty chain).
    pub fn tip_commit_hash(&self) -> [u8; 32] {
        let g = self.inner.lock();
        g.blocks.last().map(|b| b.commit_hash).unwrap_or([0u8; 32])
    }

    /// Commits a validated block: stamps the transactions filter and
    /// commit hash into the metadata, indexes tx ids, and appends.
    ///
    /// `tx_ids` pairs with `tx_filter` index-by-index and is used to build
    /// the duplicate-detection index and the history database.
    ///
    /// # Errors
    ///
    /// Any [`LedgerError`] variant: out-of-order blocks, chain breaks,
    /// duplicates, or a filter length mismatch.
    pub fn commit_block(
        &self,
        mut block: Block,
        tx_ids: &[String],
        tx_filter: Vec<TxValidationCode>,
        modified_keys: &[Vec<String>],
    ) -> Result<CommittedBlock, LedgerError> {
        let mut g = self.inner.lock();
        let expected = g.blocks.len() as u64;
        if block.header.number != expected {
            return Err(if block.header.number < expected {
                LedgerError::Duplicate(block.header.number)
            } else {
                LedgerError::OutOfOrder {
                    expected,
                    got: block.header.number,
                }
            });
        }
        let tip = g.blocks.last().map(|b| b.header_hash).unwrap_or([0u8; 32]);
        if block.header.previous_hash != tip {
            return Err(LedgerError::BrokenChain);
        }
        if tx_filter.len() != block.data.data.len() || tx_ids.len() != tx_filter.len() {
            return Err(LedgerError::FilterMismatch);
        }

        let filter_bytes: Vec<u8> = tx_filter.iter().map(|c| c.code()).collect();
        let prev_commit = g.blocks.last().map(|b| b.commit_hash).unwrap_or([0u8; 32]);
        let commit_hash = compute_commit_hash(&prev_commit, &block, &filter_bytes);
        block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER] = filter_bytes;
        block.metadata.metadata[metadata_index::COMMIT_HASH] = commit_hash.to_vec();

        let header_hash = block_header_hash(&block.header);
        for (i, tx_id) in tx_ids.iter().enumerate() {
            g.tx_index.insert(tx_id.clone(), (expected, i));
        }
        for (i, keys) in modified_keys.iter().enumerate() {
            if tx_filter[i] == TxValidationCode::Valid {
                for key in keys {
                    g.history.record(key, expected, i as u64);
                }
            }
        }
        let committed = CommittedBlock {
            block,
            header_hash,
            tx_filter,
            commit_hash,
        };
        g.blocks.push(committed.clone());
        Ok(committed)
    }

    /// Fetches a committed block by number.
    pub fn block(&self, number: u64) -> Option<CommittedBlock> {
        self.inner.lock().blocks.get(number as usize).cloned()
    }

    /// Looks up which block and position committed `tx_id` (the duplicate
    /// check of ledger commit).
    pub fn find_tx(&self, tx_id: &str) -> Option<(u64, usize)> {
        self.inner.lock().tx_index.get(tx_id).copied()
    }

    /// Returns the modification history `(block, tx)` for a state key.
    pub fn key_history(&self, key: &str) -> Vec<(u64, u64)> {
        self.inner.lock().history.of(key)
    }

    /// Verifies the whole hash chain; returns the first bad link.
    pub fn verify_chain(&self) -> Result<(), u64> {
        let g = self.inner.lock();
        let mut prev = [0u8; 32];
        for cb in g.blocks.iter() {
            if cb.block.header.previous_hash != prev {
                return Err(cb.block.header.number);
            }
            prev = cb.header_hash;
        }
        Ok(())
    }
}

/// Running commit hash: `sha256(prev ++ header ++ filter)`. Both peer
/// implementations must agree on it — the paper used commit-hash equality
/// to confirm BMac did not alter validation behaviour (§4.1).
pub fn compute_commit_hash(prev: &[u8; 32], block: &Block, filter: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&block.header.marshal());
    h.update(filter);
    h.finalize()
}

/// Tracks "which keys have been modified by which blocks and
/// transactions" (paper §2.1.2 step 5).
#[derive(Debug, Default)]
pub struct HistoryDb {
    entries: HashMap<String, Vec<(u64, u64)>>,
}

impl HistoryDb {
    /// Creates an empty history database.
    pub fn new() -> Self {
        HistoryDb::default()
    }

    /// Records that `key` was modified by `(block, tx)`.
    pub fn record(&mut self, key: &str, block: u64, tx: u64) {
        self.entries
            .entry(key.to_string())
            .or_default()
            .push((block, tx));
    }

    /// All modifications of `key`, oldest first.
    pub fn of(&self, key: &str) -> Vec<(u64, u64)> {
        self.entries.get(key).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::{Msp, Role};
    use fabric_protos::txflow::{build_block, build_transaction, TxParams};

    fn make_block(number: u64, prev: [u8; 32], ntx: usize) -> (Block, Vec<String>) {
        let mut msp = Msp::new(1);
        let client = msp.issue(0, Role::Client, 0).unwrap();
        let endorser = msp.issue(0, Role::Peer, 0).unwrap();
        let orderer = msp.issue(0, Role::Orderer, 0).unwrap();
        let mut envs = Vec::new();
        let mut ids = Vec::new();
        for i in 0..ntx {
            let built = build_transaction(
                &client,
                &[&endorser],
                &TxParams {
                    channel_id: "ch",
                    chaincode: "cc",
                    reads: vec![],
                    writes: vec![(format!("k{number}_{i}"), vec![1])],
                    nonce: vec![number as u8, i as u8],
                    timestamp: 0,
                },
            );
            envs.push(built.envelope);
            ids.push(built.tx_id);
        }
        (build_block(number, &prev, envs, &orderer), ids)
    }

    #[test]
    fn commit_and_fetch() {
        let ledger = Ledger::new();
        let (block, ids) = make_block(0, [0u8; 32], 2);
        let committed = ledger
            .commit_block(
                block,
                &ids,
                vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict],
                &[vec!["k0_0".into()], vec!["k0_1".into()]],
            )
            .unwrap();
        assert_eq!(ledger.height(), 1);
        assert_eq!(ledger.tip_hash(), committed.header_hash);
        let fetched = ledger.block(0).unwrap();
        assert_eq!(
            fetched.block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER],
            vec![0u8, 11]
        );
    }

    #[test]
    fn duplicate_and_out_of_order_rejected() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 1);
        ledger
            .commit_block(b0.clone(), &ids, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        assert_eq!(
            ledger
                .commit_block(b0, &ids, vec![TxValidationCode::Valid], &[vec![]])
                .unwrap_err(),
            LedgerError::Duplicate(0)
        );
        let (b5, ids5) = make_block(5, ledger.tip_hash(), 1);
        assert_eq!(
            ledger
                .commit_block(b5, &ids5, vec![TxValidationCode::Valid], &[vec![]])
                .unwrap_err(),
            LedgerError::OutOfOrder {
                expected: 1,
                got: 5
            }
        );
    }

    #[test]
    fn chain_break_rejected() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 1);
        ledger
            .commit_block(b0, &ids, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        let (b1_bad, ids1) = make_block(1, [9u8; 32], 1);
        assert_eq!(
            ledger
                .commit_block(b1_bad, &ids1, vec![TxValidationCode::Valid], &[vec![]])
                .unwrap_err(),
            LedgerError::BrokenChain
        );
    }

    #[test]
    fn filter_mismatch_rejected() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 2);
        assert_eq!(
            ledger
                .commit_block(b0, &ids, vec![TxValidationCode::Valid], &[vec![], vec![]])
                .unwrap_err(),
            LedgerError::FilterMismatch
        );
    }

    #[test]
    fn tx_index_finds_transactions() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 3);
        ledger
            .commit_block(
                b0,
                &ids,
                vec![TxValidationCode::Valid; 3],
                &[vec![], vec![], vec![]],
            )
            .unwrap();
        assert_eq!(ledger.find_tx(&ids[1]), Some((0, 1)));
        assert_eq!(ledger.find_tx("nope"), None);
    }

    #[test]
    fn commit_hash_chains() {
        let ledger = Ledger::new();
        let (b0, ids0) = make_block(0, [0u8; 32], 1);
        let c0 = ledger
            .commit_block(b0, &ids0, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        let (b1, ids1) = make_block(1, ledger.tip_hash(), 1);
        let c1 = ledger
            .commit_block(b1, &ids1, vec![TxValidationCode::Valid], &[vec![]])
            .unwrap();
        assert_ne!(c0.commit_hash, c1.commit_hash);
        assert_eq!(ledger.tip_commit_hash(), c1.commit_hash);
        assert!(ledger.verify_chain().is_ok());
    }

    #[test]
    fn history_records_only_valid_txs() {
        let ledger = Ledger::new();
        let (b0, ids) = make_block(0, [0u8; 32], 2);
        ledger
            .commit_block(
                b0,
                &ids,
                vec![TxValidationCode::Valid, TxValidationCode::MvccReadConflict],
                &[vec!["a".into()], vec!["b".into()]],
            )
            .unwrap();
        assert_eq!(ledger.key_history("a"), vec![(0, 0)]);
        assert!(ledger.key_history("b").is_empty());
    }
}
