//! Discrete-event simulation core for performance modeling.
//!
//! The paper validated its results with "a high-level simulator for BMac
//! architecture ... The performance reported by our simulator is always
//! within 1% of actual measurements from the hardware" (§4.1). This crate
//! is the equivalent substrate for our reproduction: a typed event queue,
//! multi-server resources (ECDSA engines, vscc worker threads), FIFO
//! occupancy tracking, and network links with bandwidth/latency, all in
//! integer nanoseconds.

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// One microsecond in [`SimTime`] units.
pub const MICROS: SimTime = 1_000;
/// One millisecond in [`SimTime`] units.
pub const MILLIS: SimTime = 1_000_000;
/// One second in [`SimTime`] units.
pub const SECONDS: SimTime = 1_000_000_000;

/// Converts a [`SimTime`] to fractional milliseconds.
pub fn as_millis(t: SimTime) -> f64 {
    t as f64 / MILLIS as f64
}

/// Converts a [`SimTime`] to fractional microseconds.
pub fn as_micros(t: SimTime) -> f64 {
    t as f64 / MICROS as f64
}

/// Throughput in items/second given a count and a duration.
pub fn throughput_per_sec(items: u64, elapsed: SimTime) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    items as f64 * SECONDS as f64 / elapsed as f64
}

/// A time-ordered event queue. Events with equal timestamps pop in
/// insertion order (stable), which keeps simulations deterministic.
///
/// ```
/// use fabric_sim::EventQueue;
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after *now*.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — a causality bug in the model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pops the next event and advances the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// A pool of identical servers (ECDSA engines, vscc threads, DMA
/// channels). Jobs are placed on the earliest-available server — the
/// paper's `ends_scheduler` behaviour of issuing work "as soon as a free
/// ecdsa_engine instance is available".
#[derive(Debug, Clone)]
pub struct ServerPool {
    free_at: Vec<SimTime>,
    busy: SimTime,
    jobs: u64,
}

impl ServerPool {
    /// Creates a pool of `n` servers, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "server pool must have at least one server");
        ServerPool {
            free_at: vec![0; n],
            busy: 0,
            jobs: 0,
        }
    }

    /// Schedules a job that becomes ready at `ready` and takes `service`:
    /// returns `(start, finish)`. The job runs on the earliest-free
    /// server; `start = max(ready, earliest free time)`.
    pub fn run(&mut self, ready: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("pool is non-empty");
        let start = ready.max(free);
        let finish = start + service;
        self.free_at[idx] = finish;
        self.busy += service;
        self.jobs += 1;
        (start, finish)
    }

    /// Earliest time any server is free.
    pub fn earliest_free(&self) -> SimTime {
        *self.free_at.iter().min().expect("pool is non-empty")
    }

    /// Time when all servers are drained.
    pub fn drained_at(&self) -> SimTime {
        *self.free_at.iter().max().expect("pool is non-empty")
    }

    /// Number of servers.
    pub fn size(&self) -> usize {
        self.free_at.len()
    }

    /// Total busy time accumulated across servers.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Jobs executed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon]` across all servers.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy as f64 / (horizon as f64 * self.free_at.len() as f64)
    }
}

/// A point-to-point network link with serialization (bandwidth) and
/// propagation (latency) delays. Transmissions queue behind each other —
/// the 1 Gbps links between the paper's VMs.
#[derive(Debug, Clone)]
pub struct NetLink {
    bits_per_sec: u64,
    latency: SimTime,
    free_at: SimTime,
    bytes_sent: u64,
}

impl NetLink {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub fn new(bits_per_sec: u64, latency: SimTime) -> Self {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        NetLink {
            bits_per_sec,
            latency,
            free_at: 0,
            bytes_sent: 0,
        }
    }

    /// A 1 Gbps / 100 µs-latency datacenter link (the paper's VM network).
    pub fn gigabit() -> Self {
        NetLink::new(1_000_000_000, 100 * MICROS)
    }

    /// Serialization delay for `bytes` at the link rate.
    pub fn serialization_delay(&self, bytes: usize) -> SimTime {
        (bytes as u128 * 8 * SECONDS as u128 / self.bits_per_sec as u128) as SimTime
    }

    /// Transmits `bytes` becoming ready at `ready`; returns the arrival
    /// time of the last bit at the receiver.
    pub fn transmit(&mut self, ready: SimTime, bytes: usize) -> SimTime {
        let start = ready.max(self.free_at);
        let done_sending = start + self.serialization_delay(bytes);
        self.free_at = done_sending;
        self.bytes_sent += bytes as u64;
        done_sending + self.latency
    }

    /// Total payload bytes pushed through the link.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Propagation latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }
}

/// FIFO occupancy tracker: not a queue of items, but a depth counter with
/// a high-water mark, used to size the hardware FIFOs in Figure 7.
#[derive(Debug, Clone, Default)]
pub struct FifoGauge {
    depth: usize,
    high_water: usize,
    pushes: u64,
    pops: u64,
}

impl FifoGauge {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        FifoGauge::default()
    }

    /// Records a push.
    pub fn push(&mut self) {
        self.depth += 1;
        self.high_water = self.high_water.max(self.depth);
        self.pushes += 1;
    }

    /// Records a pop.
    ///
    /// # Panics
    ///
    /// Panics on pop from an empty FIFO — a model bug.
    pub fn pop(&mut self) {
        assert!(self.depth > 0, "pop from empty FIFO");
        self.depth -= 1;
        self.pops += 1;
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Deepest occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }
}

/// Sample accumulator with mean and percentiles (Figure 9b's CDF).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics when no samples were recorded or `p` is out of range.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "percentile of empty sample set");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        self.ensure_sorted();
        let rank = ((p / 100.0) * (self.values.len() as f64 - 1.0)).round() as usize;
        self.values[rank]
    }

    /// CDF points `(value, cumulative fraction)` at each sample.
    pub fn cdf(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.values.len() as f64;
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_events() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn queue_is_stable_for_ties() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn queue_clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule(3, ());
        assert_eq!(q.pop().unwrap().0, 10);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn queue_rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn pool_runs_jobs_in_parallel() {
        let mut pool = ServerPool::new(2);
        let (s1, f1) = pool.run(0, 100);
        let (s2, f2) = pool.run(0, 100);
        let (s3, _) = pool.run(0, 100);
        assert_eq!((s1, f1), (0, 100));
        assert_eq!((s2, f2), (0, 100));
        assert_eq!(s3, 100); // third job waits for a server
        assert_eq!(pool.jobs(), 3);
        assert_eq!(pool.busy_time(), 300);
    }

    #[test]
    fn pool_respects_ready_time() {
        let mut pool = ServerPool::new(1);
        let (s, f) = pool.run(50, 10);
        assert_eq!((s, f), (50, 60));
        // ready before server free -> waits for the server
        let (s2, _) = pool.run(0, 10);
        assert_eq!(s2, 60);
    }

    #[test]
    fn pool_utilization() {
        let mut pool = ServerPool::new(2);
        pool.run(0, 100);
        pool.run(0, 100);
        assert!((pool.utilization(100) - 1.0).abs() < 1e-9);
        assert!((pool.utilization(200) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn link_serialization_and_latency() {
        let mut link = NetLink::new(1_000_000_000, 100 * MICROS);
        // 1250 bytes at 1 Gbps = 10 us serialization.
        assert_eq!(link.serialization_delay(1250), 10 * MICROS);
        let arrival = link.transmit(0, 1250);
        assert_eq!(arrival, 10 * MICROS + 100 * MICROS);
        // Next packet queues behind the first.
        let arrival2 = link.transmit(0, 1250);
        assert_eq!(arrival2, 20 * MICROS + 100 * MICROS);
        assert_eq!(link.bytes_sent(), 2500);
    }

    #[test]
    fn fifo_gauge_tracks_high_water() {
        let mut g = FifoGauge::new();
        g.push();
        g.push();
        g.pop();
        g.push();
        g.push();
        assert_eq!(g.depth(), 3);
        assert_eq!(g.high_water(), 3);
        assert_eq!(g.pushes(), 4);
    }

    #[test]
    #[should_panic(expected = "pop from empty")]
    fn fifo_gauge_underflow_panics() {
        FifoGauge::new().pop();
    }

    #[test]
    fn samples_percentiles() {
        let mut s = Samples::new();
        for i in 1..=100 {
            s.add(i as f64);
        }
        assert!((s.mean() - 50.5).abs() < 1e-9);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(95.0), 95.0);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 100);
        assert!((cdf[49].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_helper() {
        assert!((throughput_per_sec(1000, SECONDS) - 1000.0).abs() < 1e-9);
        assert_eq!(throughput_per_sec(5, 0), 0.0);
    }
}
