//! Lexical repo lint: line-level scans for the defect classes the
//! repo's history has already paid for, plus `LOCK_ORDER.txt` manifest
//! consistency. Deliberately parser-free (offline-shims constraint):
//! everything is substring matching over lines, with a comment-aware
//! suppression syntax (`// lint:allow(<rule>) <reason>`) for the rare
//! justified exception.
//!
//! Rules:
//!
//! * `truncating-cast` — `as u16` / `as u32` in `bmac-protocol` /
//!   `fabric-store` sources (the wire/format crates where a silent
//!   integer alias corrupts frames; use `try_from` + an error, or
//!   suppress with a reason proving the domain fits).
//! * `no-unwrap` — `.unwrap()` in non-test library code. `.expect()`
//!   stays allowed: it documents the violated invariant.
//! * `relaxed-ordering` — `Ordering::Relaxed` without a `// relaxed:`
//!   justification on the same or preceding line.
//! * `lock-order` — `LOCK_ORDER.txt` must parse, be acyclic, declare
//!   every `named("...")` label used in non-test source, and not
//!   declare labels that no longer exist (or `test.` labels at all).
//!
//! Scope: `crates/<name>/src/**/*.rs` excluding `crates/shims` (vendored
//! stand-ins), `crates/bench` (reporting binary, not hot-path code) and
//! `crates/fabric-check` (the linter's own sources contain every rule
//! pattern as string literals; its behavior is covered by fixtures).
//! Code at or after a `#[cfg(test)]` line is exempt, as are
//! comment-only lines. `named()` labels are additionally collected from
//! `tests/` so the manifest inventory covers integration fixtures.

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A `named("label")` occurrence in source.
#[derive(Debug, Clone)]
pub struct LabelUse {
    pub path: String,
    pub line: usize,
    pub label: String,
    pub in_test: bool,
}

/// Parsed `LOCK_ORDER.txt`.
#[derive(Debug, Default, Clone)]
pub struct ParsedManifest {
    /// `a -> b`: `a` may be held while acquiring `b`.
    pub edges: Vec<(String, String)>,
    /// Every label mentioned (edge endpoints and `lock` lines).
    pub labels: Vec<String>,
}

/// Parses the manifest. Errors carry the offending line number.
pub fn parse_manifest(text: &str) -> Result<ParsedManifest, String> {
    let mut m = ParsedManifest::default();
    let mut seen = HashSet::new();
    let mut add_label = |labels: &mut Vec<String>, l: &str| {
        if seen.insert(l.to_string()) {
            labels.push(l.to_string());
        }
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("lock ") {
            let label = rest.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(format!("line {}: malformed `lock` line: {raw}", idx + 1));
            }
            add_label(&mut m.labels, label);
        } else if let Some((a, b)) = line.split_once("->") {
            let (a, b) = (a.trim(), b.trim());
            if a.is_empty()
                || b.is_empty()
                || a.contains(char::is_whitespace)
                || b.contains(char::is_whitespace)
            {
                return Err(format!("line {}: malformed edge: {raw}", idx + 1));
            }
            if a == b {
                return Err(format!("line {}: self-edge `{a} -> {a}`", idx + 1));
            }
            add_label(&mut m.labels, a);
            add_label(&mut m.labels, b);
            m.edges.push((a.to_string(), b.to_string()));
        } else {
            return Err(format!(
                "line {}: expected `lock <label>` or `<a> -> <b>`: {raw}",
                idx + 1
            ));
        }
    }
    Ok(m)
}

/// Returns the labels of a cycle in the declared order, if one exists.
pub fn manifest_cycle(m: &ParsedManifest) -> Option<Vec<String>> {
    fn dfs(
        node: &str,
        edges: &[(String, String)],
        visiting: &mut Vec<String>,
        done: &mut HashSet<String>,
    ) -> Option<Vec<String>> {
        if done.contains(node) {
            return None;
        }
        if let Some(pos) = visiting.iter().position(|n| n == node) {
            let mut cycle = visiting[pos..].to_vec();
            cycle.push(node.to_string());
            return Some(cycle);
        }
        visiting.push(node.to_string());
        for (a, b) in edges {
            if a == node {
                if let Some(c) = dfs(b, edges, visiting, done) {
                    return Some(c);
                }
            }
        }
        visiting.pop();
        done.insert(node.to_string());
        None
    }
    let mut done = HashSet::new();
    for label in &m.labels {
        if let Some(c) = dfs(label, &m.edges, &mut Vec::new(), &mut done) {
            return Some(c);
        }
    }
    None
}

fn norm_path(path: &str) -> String {
    path.replace('\\', "/")
}

fn in_cast_scope(path: &str) -> bool {
    let p = norm_path(path);
    p.contains("crates/bmac-protocol/src/") || p.contains("crates/fabric-store/src/")
}

/// Splits off a trailing `//` comment, returning `(code, comment)`.
/// Only a `//` preceded by whitespace (or at line start) counts, so
/// `https://` inside a string literal survives as code.
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'/'
            && bytes[i + 1] == b'/'
            && (i == 0 || bytes[i - 1].is_ascii_whitespace())
        {
            return (&line[..i], &line[i..]);
        }
        i += 1;
    }
    (line, "")
}

fn has_allow(comment: &str, rule: &str) -> bool {
    comment.contains(&format!("lint:allow({rule})"))
}

fn suppressed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let (_, comment) = split_comment(lines[idx]);
    if has_allow(comment, rule) {
        return true;
    }
    if idx > 0 {
        let prev = lines[idx - 1].trim_start();
        if prev.starts_with("//") && has_allow(prev, rule) {
            return true;
        }
    }
    false
}

fn relaxed_justified(lines: &[&str], idx: usize) -> bool {
    let (_, comment) = split_comment(lines[idx]);
    if comment.contains("relaxed:") {
        return true;
    }
    // A `// relaxed:` comment covers the contiguous run below it:
    // walk upward through comment lines and other `Ordering::Relaxed`
    // lines (so one justification can cover a multi-line snapshot or a
    // wrapped multi-line comment) until we find the comment or any
    // unrelated code line.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let prev = lines[i].trim_start();
        if prev.starts_with("//") {
            if prev.contains("relaxed:") {
                return true;
            }
            continue;
        }
        let (code, _) = split_comment(lines[i]);
        if code.contains("Ordering::Relaxed") {
            continue;
        }
        break;
    }
    false
}

/// Per-line rules for one file. `path` determines rule scoping and is
/// echoed into findings; callers may pass a virtual path to lint a
/// snippet as if it lived elsewhere (the fixture tests do).
pub fn lint_file(path: &str, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    let mut in_test = false;
    let cast_scope = in_cast_scope(path);
    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)") {
            in_test = true;
        }
        if in_test || trimmed.starts_with("//") {
            continue;
        }
        let (code, _) = split_comment(raw);
        let mut hit = |rule: &'static str, message: String| {
            if !suppressed(&lines, idx, rule) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: idx + 1,
                    rule,
                    message,
                });
            }
        };
        if code.contains(".unwrap()") {
            hit(
                "no-unwrap",
                "`.unwrap()` in non-test code: use `.expect(\"<violated invariant>\")` or \
                 propagate the error"
                    .to_string(),
            );
        }
        if cast_scope && (code.contains(" as u16") || code.contains(" as u32")) {
            hit(
                "truncating-cast",
                "possibly-truncating integer cast in a wire/format crate: use `try_from` \
                 with an error path, or suppress with a domain proof"
                    .to_string(),
            );
        }
        if code.contains("Ordering::Relaxed") && !relaxed_justified(&lines, idx) {
            hit(
                "relaxed-ordering",
                "`Ordering::Relaxed` without a `// relaxed:` justification comment".to_string(),
            );
        }
    }
    findings
}

/// Collects `named("label")` uses (for the lock-order inventory).
pub fn collect_labels(path: &str, content: &str) -> Vec<LabelUse> {
    let lines: Vec<&str> = content.lines().collect();
    let mut out = Vec::new();
    let mut in_test = false;
    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)") {
            in_test = true;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let mut rest: &str = raw;
        while let Some(pos) = rest.find("named(\"") {
            let tail = &rest[pos + "named(\"".len()..];
            if let Some(end) = tail.find('"') {
                out.push(LabelUse {
                    path: path.to_string(),
                    line: idx + 1,
                    label: tail[..end].to_string(),
                    in_test,
                });
                rest = &tail[end..];
            } else {
                break;
            }
        }
        // rustfmt may break the call after the paren, leaving the
        // label literal to open the next line:
        //     Mutex::named(
        //         "store.journal",
        let (code, _) = split_comment(raw);
        if code.trim_end().ends_with("named(") {
            if let Some(next) = lines.get(idx + 1) {
                let next = next.trim_start();
                if let Some(tail) = next.strip_prefix('"') {
                    if let Some(end) = tail.find('"') {
                        out.push(LabelUse {
                            path: path.to_string(),
                            line: idx + 2,
                            label: tail[..end].to_string(),
                            in_test,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Manifest-vs-source consistency findings. `manifest_path` is echoed
/// into findings; `labels` is every collected [`LabelUse`].
pub fn lock_order_findings(
    manifest_text: &str,
    manifest_path: &str,
    labels: &[LabelUse],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let m = match parse_manifest(manifest_text) {
        Ok(m) => m,
        Err(e) => {
            findings.push(Finding {
                path: manifest_path.to_string(),
                line: 0,
                rule: "lock-order",
                message: format!("manifest parse error: {e}"),
            });
            return findings;
        }
    };
    if let Some(cycle) = manifest_cycle(&m) {
        findings.push(Finding {
            path: manifest_path.to_string(),
            line: 0,
            rule: "lock-order",
            message: format!("declared order contains a cycle: {}", cycle.join(" -> ")),
        });
    }
    let declared: HashSet<&str> = m.labels.iter().map(String::as_str).collect();
    let in_source: HashSet<&str> = labels.iter().map(|l| l.label.as_str()).collect();
    for label in &m.labels {
        if label.starts_with("test.") {
            findings.push(Finding {
                path: manifest_path.to_string(),
                line: 0,
                rule: "lock-order",
                message: format!("`test.` labels are exempt and must not be declared: {label}"),
            });
        } else if !in_source.contains(label.as_str()) {
            findings.push(Finding {
                path: manifest_path.to_string(),
                line: 0,
                rule: "lock-order",
                message: format!("declared label `{label}` has no named(\"{label}\") in source"),
            });
        }
    }
    for l in labels {
        if l.in_test || l.label.starts_with("test.") {
            continue;
        }
        if !declared.contains(l.label.as_str()) {
            findings.push(Finding {
                path: l.path.clone(),
                line: l.line,
                rule: "lock-order",
                message: format!(
                    "lock label `{}` is not declared in {manifest_path}; add a `lock {}` \
                     line or its order edges",
                    l.label, l.label
                ),
            });
        }
    }
    findings
}

/// Crate-source directories the per-line rules scan, relative to the
/// workspace root.
pub fn scan_roots(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == "shims" || name == "bench" || name == "fabric-check" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    roots.sort();
    Ok(roots)
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    norm_path(&path.strip_prefix(root).unwrap_or(path).to_string_lossy())
}

/// Full tree scan from the workspace root: per-line rules over
/// [`scan_roots`], label collection additionally over `tests/`, and
/// the lock-order manifest checks.
pub fn workspace_findings(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut labels = Vec::new();
    let mut files = Vec::new();
    for dir in scan_roots(root)? {
        rs_files(&dir, &mut files)?;
    }
    files.sort();
    for file in &files {
        let content = std::fs::read_to_string(file)?;
        let path = rel(root, file);
        findings.extend(lint_file(&path, &content));
        labels.extend(collect_labels(&path, &content));
    }
    let tests_dir = root.join("tests");
    if tests_dir.is_dir() {
        let mut test_files = Vec::new();
        rs_files(&tests_dir, &mut test_files)?;
        test_files.sort();
        for file in &test_files {
            let content = std::fs::read_to_string(file)?;
            // Integration tests are exempt from the per-line rules but
            // contribute to the label inventory; mark them in_test so
            // undeclared (non-`test.`) labels there are tolerated.
            let path = rel(root, file);
            for mut l in collect_labels(&path, &content) {
                l.in_test = true;
                labels.push(l);
            }
        }
    }
    let manifest_path = "crates/fabric-check/LOCK_ORDER.txt";
    match std::fs::read_to_string(root.join(manifest_path)) {
        Ok(text) => findings.extend(lock_order_findings(&text, manifest_path, &labels)),
        Err(e) => findings.push(Finding {
            path: manifest_path.to_string(),
            line: 0,
            rule: "lock-order",
            message: format!("cannot read manifest: {e}"),
        }),
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory containing `ROADMAP.md` (the repo's existing convention,
/// shared with the bench harness).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("ROADMAP.md").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const BAD_CAST: &str = include_str!("../fixtures/bad_cast.fixture");
    const BAD_UNWRAP: &str = include_str!("../fixtures/bad_unwrap.fixture");
    const BAD_RELAXED: &str = include_str!("../fixtures/bad_relaxed.fixture");
    const GOOD: &str = include_str!("../fixtures/good.fixture");

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn bad_cast_fixture_trips_rule() {
        let f = lint_file("crates/fabric-store/src/fixture.rs", BAD_CAST);
        assert!(rules(&f).contains(&"truncating-cast"), "{f:?}");
    }

    #[test]
    fn cast_rule_is_scoped_to_wire_crates() {
        let f = lint_file("crates/fabric-crypto/src/fixture.rs", BAD_CAST);
        assert!(!rules(&f).contains(&"truncating-cast"), "{f:?}");
    }

    #[test]
    fn bad_unwrap_fixture_trips_rule() {
        let f = lint_file("crates/fabric-peer/src/fixture.rs", BAD_UNWRAP);
        assert!(rules(&f).contains(&"no-unwrap"), "{f:?}");
    }

    #[test]
    fn bad_relaxed_fixture_trips_rule() {
        let f = lint_file("crates/fabric-peer/src/fixture.rs", BAD_RELAXED);
        assert!(rules(&f).contains(&"relaxed-ordering"), "{f:?}");
    }

    #[test]
    fn good_fixture_is_clean_in_every_scope() {
        for path in [
            "crates/fabric-store/src/fixture.rs",
            "crates/fabric-peer/src/fixture.rs",
        ] {
            let f = lint_file(path, GOOD);
            assert!(f.is_empty(), "{path}: {f:?}");
        }
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\n";
        assert!(lint_file("crates/fabric-peer/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_requires_matching_rule() {
        let src = "fn a() { x.unwrap(); } // lint:allow(truncating-cast) wrong rule\n";
        let f = lint_file("crates/fabric-peer/src/x.rs", src);
        assert_eq!(rules(&f), vec!["no-unwrap"]);
        let src = "// lint:allow(no-unwrap) startup-only path, cannot continue without it\nfn a() { x.unwrap(); }\n";
        assert!(lint_file("crates/fabric-peer/src/x.rs", src).is_empty());
    }

    #[test]
    fn manifest_roundtrip_and_cycle_detection() {
        let m =
            parse_manifest("# c\nlock a.leaf\nx.one -> x.two\nx.two -> x.three\n").expect("parses");
        assert_eq!(m.edges.len(), 2);
        assert!(m.labels.contains(&"a.leaf".to_string()));
        assert!(manifest_cycle(&m).is_none());
        let m = parse_manifest("x.one -> x.two\nx.two -> x.one\n").expect("parses");
        let cycle = manifest_cycle(&m).expect("cyclic");
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn manifest_rejects_malformed_lines() {
        assert!(parse_manifest("x.one => x.two\n").is_err());
        assert!(parse_manifest("x.one -> \n").is_err());
        assert!(parse_manifest("a -> a\n").is_err());
    }

    #[test]
    fn lock_order_consistency_findings() {
        let labels = vec![
            LabelUse {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                label: "x.used".into(),
                in_test: false,
            },
            LabelUse {
                path: "crates/x/src/lib.rs".into(),
                line: 9,
                label: "x.undeclared".into(),
                in_test: false,
            },
            LabelUse {
                path: "tests/t.rs".into(),
                line: 1,
                label: "test.anything".into(),
                in_test: true,
            },
        ];
        let f = lock_order_findings("lock x.used\nlock x.ghost\n", "LOCK_ORDER.txt", &labels);
        let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("x.ghost")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("x.undeclared")), "{msgs:?}");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn collect_labels_marks_test_regions() {
        let src = "let a = Mutex::named(\"x.a\", 1);\n#[cfg(test)]\nmod t { fn f() { Mutex::named(\"test.b\", 2); } }\n";
        let labels = collect_labels("crates/x/src/lib.rs", src);
        assert_eq!(labels.len(), 2);
        assert!(!labels[0].in_test && labels[0].label == "x.a");
        assert!(labels[1].in_test && labels[1].label == "test.b");
    }

    #[test]
    fn embedded_manifest_parses_and_is_acyclic() {
        let m = parse_manifest(crate::LOCK_ORDER_MANIFEST).expect("LOCK_ORDER.txt parses");
        assert!(manifest_cycle(&m).is_none());
        assert!(!m.edges.is_empty());
    }
}
