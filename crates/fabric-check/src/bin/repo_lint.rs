//! Workspace lint gate. With no arguments, scans the whole tree from
//! the workspace root and exits non-zero on any finding (CI's
//! `lint-gate`). With `--lint-as <virtual-path> <file>...`, lints the
//! given files as if they lived at the virtual path — how CI proves the
//! known-bad fixtures still trip their rules.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let findings = match args.first().map(String::as_str) {
        None => {
            let cwd = std::env::current_dir().expect("cwd accessible");
            let root = fabric_check::lint::find_workspace_root(&cwd)
                .expect("run repo_lint from inside the workspace (ROADMAP.md not found)");
            match fabric_check::lint::workspace_findings(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("repo_lint: scan failed: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Some("--lint-as") if args.len() >= 3 => {
            let virtual_path = &args[1];
            let mut findings = Vec::new();
            for file in &args[2..] {
                match std::fs::read_to_string(Path::new(file)) {
                    Ok(content) => {
                        findings.extend(fabric_check::lint::lint_file(virtual_path, &content));
                    }
                    Err(e) => {
                        eprintln!("repo_lint: cannot read {file}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            findings
        }
        _ => {
            eprintln!("usage: repo_lint                     scan the workspace tree");
            eprintln!("       repo_lint --lint-as <virtual-path> <file>...");
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("repo_lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("repo_lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
