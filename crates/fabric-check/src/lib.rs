//! Concurrency-analysis layer for the workspace's lock-based core.
//!
//! Two halves share this crate:
//!
//! * **Runtime** (this module): a process-wide lock-order graph fed by
//!   the `parking_lot` shim when its `check-sync` feature is compiled
//!   in *and* checking is enabled at runtime (`FABRIC_CHECK_SYNC=1` or
//!   [`enable`]). Locks are keyed by allocation-site label (the
//!   `named()` constructor); every acquisition made while other locks
//!   are held adds `held → acquiring` edges, an online cycle detector
//!   panics on any lock-order inversion with both conflicting
//!   acquisition stacks, and edges between two named locks must be
//!   declared in the `LOCK_ORDER.txt` manifest. A seeded perturbation
//!   mode (`FABRIC_CHECK_SEED`) injects random pre-acquisition yields
//!   and short sleeps to shake out interleavings a lightly loaded CI
//!   host never schedules; the seed is echoed in every failure for
//!   replay. Per-label hold-time/contention counters feed the
//!   `lock_contention` bench section.
//!
//! * **Static** ([`lint`] + the `repo_lint` binary): a lexical,
//!   dependency-free scan of workspace sources for the defect classes
//!   this repo has already paid for (truncating casts, hot-path
//!   `unwrap()`, unjustified `Ordering::Relaxed`) plus consistency
//!   checks of the `LOCK_ORDER.txt` manifest against the labels
//!   actually present in source.
//!
//! This crate is deliberately std-only: the `parking_lot` shim depends
//! on it, so it must sit below every lock in the workspace and must not
//! use the shim itself (its own internals use `std::sync` directly,
//! which the checker does not instrument — no recursion).
//!
//! # Lock-naming convention
//!
//! Labels are `crate.site` (e.g. `statedb.shard`, `peer.stream.state`).
//! Every instance constructed with the same label shares one graph
//! node: the 16 statedb shards are one `statedb.shard` node, so an
//! order violated between any two shards is still a cycle. Labels
//! beginning with `test.` are exempt from manifest declaration (test
//! fixtures invent orders freely) but still cycle-checked.

pub mod lint;

use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::{Duration, Instant};

/// The checked lock-order manifest, compiled into the binary so the
/// runtime checker and the repo lint can never drift apart.
pub const LOCK_ORDER_MANIFEST: &str = include_str!("../LOCK_ORDER.txt");

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("FABRIC_CHECK_SYNC") {
            let v = v.trim();
            if v == "1" || v.eq_ignore_ascii_case("true") {
                ENABLED.store(true, Ordering::SeqCst);
            }
        }
        if let Ok(v) = std::env::var("FABRIC_CHECK_SEED") {
            if let Ok(s) = v.trim().parse::<u64>() {
                SEED.store(s, Ordering::SeqCst);
            }
        }
    });
}

/// Whether runtime checking is on. This is the instrumented shim's fast
/// path: one `Once` completion check plus one atomic load when off.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns runtime checking on for the current process (tests and the
/// bench harness call this; CI sets `FABRIC_CHECK_SYNC=1` instead).
pub fn enable() {
    init_from_env();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns runtime checking off. Locks acquired while enabled are still
/// released correctly afterwards (release tracking rides on the guard
/// token, not on this flag).
pub fn disable() {
    init_from_env();
    ENABLED.store(false, Ordering::SeqCst);
}

/// Sets the schedule-perturbation seed. `0` disables perturbation.
/// Threads derive their decision stream lazily, so set the seed before
/// spawning the workload.
pub fn set_seed(seed: u64) {
    init_from_env();
    SEED.store(seed, Ordering::SeqCst);
}

/// The active perturbation seed (`0` = perturbation off).
pub fn current_seed() -> u64 {
    init_from_env();
    SEED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Lock identity
// ---------------------------------------------------------------------------

/// Identity of one lock as seen by the checker. Embedded by the
/// `parking_lot` shim into every `Mutex`/`RwLock` when `check-sync` is
/// compiled in. Named tags resolve to a shared per-label node; unnamed
/// tags get a private per-instance node on first acquisition.
#[derive(Debug)]
pub struct LockTag {
    label: Option<&'static str>,
    node: AtomicPtr<NodeInfo>,
}

impl LockTag {
    /// An anonymous tag (per-instance graph node).
    pub const fn new() -> Self {
        LockTag {
            label: None,
            node: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// A named tag: all instances with this label share one graph node.
    pub const fn named(label: &'static str) -> Self {
        LockTag {
            label: Some(label),
            node: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

impl Default for LockTag {
    fn default() -> Self {
        LockTag::new()
    }
}

/// Acquisition mode, for diagnostics and same-instance relock checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `Mutex::lock` / `RwLock::write`.
    Exclusive,
    /// `RwLock::read`.
    Shared,
}

#[derive(Debug)]
struct NodeInfo {
    id: u32,
    label: &'static str,
    named: bool,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    block_ns: AtomicU64,
    hold_ns: AtomicU64,
    max_hold_ns: AtomicU64,
}

// ---------------------------------------------------------------------------
// Global graph
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Graph {
    nodes: Vec<&'static NodeInfo>,
    by_label: HashMap<&'static str, &'static NodeInfo>,
    /// Adjacency: observed `held → acquiring` orderings.
    out: HashMap<u32, Vec<u32>>,
    /// First-seen acquisition backtrace per edge, kept so a later
    /// inversion can print *both* conflicting acquisition stacks.
    sites: HashMap<(u32, u32), String>,
}

fn graph() -> MutexGuard<'static, Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    match GRAPH.get_or_init(Default::default).lock() {
        Ok(g) => g,
        // A checker panic while holding the graph poisons it; later
        // threads still need coherent diagnostics.
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct ManifestData {
    edges: HashSet<(String, String)>,
}

fn manifest() -> &'static ManifestData {
    static PARSED: OnceLock<ManifestData> = OnceLock::new();
    PARSED.get_or_init(|| {
        let parsed = lint::parse_manifest(LOCK_ORDER_MANIFEST)
            .expect("LOCK_ORDER.txt failed to parse; run repo_lint");
        ManifestData {
            edges: parsed.edges.into_iter().collect(),
        }
    })
}

fn manifest_exempt(label: &str) -> bool {
    label.starts_with("test.")
}

fn node_for(tag: &LockTag) -> &'static NodeInfo {
    let cached = tag.node.load(Ordering::Acquire);
    if !cached.is_null() {
        return unsafe { &*cached };
    }
    let node = {
        let mut g = graph();
        match tag.label {
            Some(label) => {
                if let Some(n) = g.by_label.get(label) {
                    *n
                } else {
                    let n = alloc_node(&mut g, label, true);
                    g.by_label.insert(label, n);
                    n
                }
            }
            None => {
                let id = g.nodes.len() as u32;
                let label: &'static str = Box::leak(format!("anon#{id}").into_boxed_str());
                alloc_node(&mut g, label, false)
            }
        }
    };
    let ptr = node as *const NodeInfo as *mut NodeInfo;
    // Two threads racing an anonymous tag's first acquisition both
    // allocate; the CAS loser adopts the winner's node (one NodeInfo
    // leaks, bounded by the race count).
    match tag.node.compare_exchange(
        std::ptr::null_mut(),
        ptr,
        Ordering::AcqRel,
        Ordering::Acquire,
    ) {
        Ok(_) => node,
        Err(existing) => unsafe { &*existing },
    }
}

fn alloc_node(g: &mut Graph, label: &'static str, named: bool) -> &'static NodeInfo {
    let n: &'static NodeInfo = Box::leak(Box::new(NodeInfo {
        id: g.nodes.len() as u32,
        label,
        named,
        acquisitions: AtomicU64::new(0),
        contended: AtomicU64::new(0),
        block_ns: AtomicU64::new(0),
        hold_ns: AtomicU64::new(0),
        max_hold_ns: AtomicU64::new(0),
    }));
    g.nodes.push(n);
    n
}

// ---------------------------------------------------------------------------
// Per-thread state
// ---------------------------------------------------------------------------

struct HeldEntry {
    node: &'static NodeInfo,
    instance: usize,
    acq_id: u64,
    since: Instant,
    mode: Mode,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    /// Edges this thread has already pushed through the global graph;
    /// repeat acquisitions skip the global lock entirely.
    static EDGE_CACHE: RefCell<HashSet<(u32, u32)>> = RefCell::new(HashSet::new());
    static RNG: Cell<u64> = const { Cell::new(0) };
}

static ACQ_COUNTER: AtomicU64 = AtomicU64::new(0);
static THREAD_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Pending acquisition: order-checked but not yet holding the lock.
#[derive(Debug)]
pub struct Pending {
    node: &'static NodeInfo,
    instance: usize,
    mode: Mode,
}

/// Proof of a tracked held lock; released from the guard's `Drop`.
#[derive(Debug)]
pub struct HeldToken {
    acq_id: u64,
}

/// A lock temporarily released around a condvar wait; [`reacquire`]
/// re-registers it (re-running the order checks) on wake-up.
#[derive(Debug)]
pub struct ReacquireTicket {
    node: &'static NodeInfo,
    instance: usize,
    mode: Mode,
}

/// Pre-acquisition hook: perturbs the schedule, resolves the lock's
/// graph node, and runs the self-relock / manifest / cycle checks.
/// Returns `None` when checking is disabled.
pub fn before_acquire(tag: &LockTag, mode: Mode) -> Option<Pending> {
    if !enabled() {
        return None;
    }
    perturb();
    let node = node_for(tag);
    let instance = tag as *const LockTag as usize;
    check_order(node, instance, mode);
    node.acquisitions.fetch_add(1, Ordering::Relaxed);
    Some(Pending {
        node,
        instance,
        mode,
    })
}

/// Post-acquisition hook: records contention stats and pushes the lock
/// onto the thread's held stack.
pub fn after_acquire(p: Pending, contended: bool, block_ns: u64) -> HeldToken {
    if contended {
        p.node.contended.fetch_add(1, Ordering::Relaxed);
        p.node.block_ns.fetch_add(block_ns, Ordering::Relaxed);
    }
    push_held(p.node, p.instance, p.mode)
}

fn push_held(node: &'static NodeInfo, instance: usize, mode: Mode) -> HeldToken {
    let acq_id = ACQ_COUNTER.fetch_add(1, Ordering::Relaxed) + 1;
    HELD.with(|h| {
        h.borrow_mut().push(HeldEntry {
            node,
            instance,
            acq_id,
            since: Instant::now(),
            mode,
        });
    });
    HeldToken { acq_id }
}

/// Release hook, from guard `Drop`. Guards may drop in any order, so
/// the entry is located by acquisition id, not stack position.
pub fn release(t: HeldToken) {
    pop_held(t);
}

/// Releases a held lock around a condvar wait, returning a ticket to
/// [`reacquire`] it after wake-up.
pub fn condvar_release(t: HeldToken) -> Option<ReacquireTicket> {
    pop_held(t).map(|e| ReacquireTicket {
        node: e.node,
        instance: e.instance,
        mode: e.mode,
    })
}

/// Re-registers a lock released by [`condvar_release`]: the wake-up
/// reacquisition can deadlock like any other, so the full order check
/// runs again.
pub fn reacquire(t: ReacquireTicket) -> HeldToken {
    perturb();
    check_order(t.node, t.instance, t.mode);
    t.node.acquisitions.fetch_add(1, Ordering::Relaxed);
    push_held(t.node, t.instance, t.mode)
}

fn pop_held(t: HeldToken) -> Option<HeldEntry> {
    let now = Instant::now();
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        let pos = held.iter().rposition(|e| e.acq_id == t.acq_id)?;
        let e = held.remove(pos);
        let ns = now.saturating_duration_since(e.since).as_nanos() as u64;
        e.node.hold_ns.fetch_add(ns, Ordering::Relaxed);
        e.node.max_hold_ns.fetch_max(ns, Ordering::Relaxed);
        Some(e)
    })
}

/// Whether the current thread holds a lock with this label. Used by
/// `check-sync` runtime assertions (e.g. the statedb journal-order
/// invariant: records must be emitted under `statedb.order`).
pub fn holding(label: &str) -> bool {
    if !enabled() {
        return false;
    }
    HELD.with(|h| h.borrow().iter().any(|e| e.node.label == label))
}

/// Labels currently held by this thread, innermost last (diagnostics).
pub fn held_labels() -> Vec<&'static str> {
    HELD.with(|h| h.borrow().iter().map(|e| e.node.label).collect())
}

// ---------------------------------------------------------------------------
// Order checking
// ---------------------------------------------------------------------------

fn check_order(node: &'static NodeInfo, instance: usize, mode: Mode) {
    let new_from: Vec<&'static NodeInfo> = HELD.with(|h| {
        let held = h.borrow();
        if held.is_empty() {
            return Vec::new();
        }
        for e in held.iter() {
            if e.instance == instance {
                let msg = format!(
                    "fabric-check: same-thread relock of `{}` ({:?} while already held {:?}): \
                     guaranteed or platform-dependent deadlock{}",
                    node.label,
                    mode,
                    e.mode,
                    seed_note(),
                );
                panic!("{msg}");
            }
            if e.node.id == node.id {
                let msg = format!(
                    "fabric-check: nested acquisition of two `{}` instances on one thread: \
                     no instance order is declared for this label, so opposite nesting on \
                     another thread would deadlock{}",
                    node.label,
                    seed_note(),
                );
                panic!("{msg}");
            }
        }
        EDGE_CACHE.with(|c| {
            let cache = c.borrow();
            held.iter()
                .filter(|e| !cache.contains(&(e.node.id, node.id)))
                .map(|e| e.node)
                .collect()
        })
    });
    if !new_from.is_empty() {
        register_edges(&new_from, node);
    }
}

fn register_edges(from_nodes: &[&'static NodeInfo], to: &'static NodeInfo) {
    let mut site: Option<String> = None;
    let mut g = graph();
    for from in from_nodes {
        let known = g
            .out
            .get(&from.id)
            .is_some_and(|succ| succ.contains(&to.id));
        if !known {
            let site = site
                .get_or_insert_with(|| Backtrace::force_capture().to_string())
                .clone();
            if from.named
                && to.named
                && !manifest_exempt(from.label)
                && !manifest_exempt(to.label)
                && !manifest()
                    .edges
                    .contains(&(from.label.to_string(), to.label.to_string()))
            {
                let msg = format!(
                    "fabric-check: UNDECLARED lock order `{}` -> `{}` (acquiring `{to_l}` \
                     while holding `{from_l}`).\nEvery order between named locks must be \
                     declared in crates/fabric-check/LOCK_ORDER.txt.{seed}\n\
                     acquisition stack:\n{site}",
                    from.label,
                    to.label,
                    to_l = to.label,
                    from_l = from.label,
                    seed = seed_note(),
                )
                .to_string();
                drop(g);
                panic!("{msg}");
            }
            if let Some(path) = find_path(&g, to.id, from.id) {
                let msg = render_cycle(&g, from, to, &path, &site);
                drop(g);
                panic!("{msg}");
            }
            g.out.entry(from.id).or_default().push(to.id);
            g.sites.insert((from.id, to.id), site);
        }
        EDGE_CACHE.with(|c| {
            c.borrow_mut().insert((from.id, to.id));
        });
    }
}

/// DFS for a path `start → … → goal` over observed edges.
fn find_path(g: &Graph, start: u32, goal: u32) -> Option<Vec<u32>> {
    let mut stack = vec![vec![start]];
    let mut visited = HashSet::new();
    visited.insert(start);
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("path never empty");
        if last == goal {
            return Some(path);
        }
        if let Some(succ) = g.out.get(&last) {
            for &next in succ {
                if visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push(p);
                }
            }
        }
    }
    None
}

fn render_cycle(g: &Graph, from: &NodeInfo, to: &NodeInfo, path: &[u32], site: &str) -> String {
    let mut msg = format!(
        "fabric-check: LOCK-ORDER INVERSION: acquiring `{}` while holding `{}`, but the \
         reverse order was already observed.{}\n\nthis acquisition (`{}` -> `{}`):\n{}\n",
        to.label,
        from.label,
        seed_note(),
        from.label,
        to.label,
        site,
    );
    for pair in path.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let la = g.nodes[a as usize].label;
        let lb = g.nodes[b as usize].label;
        let prior = g
            .sites
            .get(&(a, b))
            .map(String::as_str)
            .unwrap_or("<no stack recorded>");
        msg.push_str(&format!(
            "\nconflicting prior acquisition (`{la}` -> `{lb}`), first observed at:\n{prior}\n"
        ));
    }
    msg
}

fn seed_note() -> String {
    let seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        String::new()
    } else {
        format!(" [replay with FABRIC_CHECK_SEED={seed}]")
    }
}

/// Named-lock order edges observed so far, as `(held, acquired)` label
/// pairs (test introspection).
pub fn observed_edges() -> Vec<(String, String)> {
    let g = graph();
    let mut out = Vec::new();
    for (from, succ) in &g.out {
        let fl = g.nodes[*from as usize];
        for to in succ {
            let tl = g.nodes[*to as usize];
            if fl.named && tl.named {
                out.push((fl.label.to_string(), tl.label.to_string()));
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// Perturbation
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn rng_init(seed: u64, thread_index: u64) -> u64 {
    let s = splitmix64(seed ^ splitmix64(thread_index.wrapping_add(1)));
    if s == 0 {
        0x9e3779b97f4a7c15
    } else {
        s
    }
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One perturbation decision: 0 = none, 1 = yield, 2.. = sleep for
/// `(d - 1)` microseconds.
fn perturb_decision(state: &mut u64) -> u64 {
    let r = xorshift64(state);
    match r % 64 {
        0..=5 => 1,
        6 => 2 + ((r >> 8) % 50),
        _ => 0,
    }
}

fn perturb() {
    let seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        return;
    }
    let d = RNG.with(|c| {
        let mut s = c.get();
        if s == 0 {
            s = rng_init(seed, THREAD_COUNTER.fetch_add(1, Ordering::Relaxed));
        }
        let d = perturb_decision(&mut s);
        c.set(s);
        d
    });
    match d {
        0 => {}
        1 => std::thread::yield_now(),
        us => std::thread::sleep(Duration::from_micros(us - 1)),
    }
}

/// The deterministic perturbation decision stream a thread with index
/// `thread_index` derives from `seed` — replaying a seed replays these
/// decisions exactly (scheduling around them remains OS-controlled).
/// Decision encoding matches the runtime: 0 none, 1 yield, 2.. sleep.
pub fn perturb_trace(seed: u64, thread_index: u64, n: usize) -> Vec<u64> {
    let mut s = rng_init(seed, thread_index);
    (0..n).map(|_| perturb_decision(&mut s)).collect()
}

// ---------------------------------------------------------------------------
// Contention accounting
// ---------------------------------------------------------------------------

/// Snapshot of one named lock's accounting counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockStats {
    pub label: String,
    pub acquisitions: u64,
    pub contended: u64,
    pub block_ns: u64,
    pub hold_ns: u64,
    pub max_hold_ns: u64,
}

/// Counters for every named lock, sorted by label. Anonymous locks are
/// tracked for ordering but not reported (their labels are synthetic).
pub fn stats_snapshot() -> Vec<LockStats> {
    let g = graph();
    let mut out: Vec<LockStats> = g
        .nodes
        .iter()
        .filter(|n| n.named)
        .map(|n| LockStats {
            label: n.label.to_string(),
            acquisitions: n.acquisitions.load(Ordering::Relaxed),
            contended: n.contended.load(Ordering::Relaxed),
            block_ns: n.block_ns.load(Ordering::Relaxed),
            hold_ns: n.hold_ns.load(Ordering::Relaxed),
            max_hold_ns: n.max_hold_ns.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.label.cmp(&b.label));
    out
}

/// Zeroes every node's counters (the bench isolates its measured
/// workload this way). The order graph itself is never reset: observed
/// edges stay binding for the whole process.
pub fn reset_stats() {
    let g = graph();
    for n in &g.nodes {
        n.acquisitions.store(0, Ordering::Relaxed);
        n.contended.store(0, Ordering::Relaxed);
        n.block_ns.store(0, Ordering::Relaxed);
        n.hold_ns.store(0, Ordering::Relaxed);
        n.max_hold_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Tests share the process-global enable flag and graph; serialize
    /// them so `disable()` in one cannot race another's acquisitions.
    fn test_lock() -> MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        match L.get_or_init(Default::default).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn acquire(tag: &LockTag, mode: Mode) -> HeldToken {
        let p = before_acquire(tag, mode).expect("checking enabled");
        after_acquire(p, false, 0)
    }

    #[test]
    fn abba_cycle_panics_with_both_labels() {
        let _serial = test_lock();
        enable();
        let a = LockTag::named("test.cycle_a");
        let b = LockTag::named("test.cycle_b");
        // Establish a -> b.
        let ha = acquire(&a, Mode::Exclusive);
        let hb = acquire(&b, Mode::Exclusive);
        release(hb);
        release(ha);
        // Reverse order must be rejected at edge-creation time, before
        // any real blocking could happen.
        let hb = acquire(&b, Mode::Exclusive);
        let err = catch_unwind(AssertUnwindSafe(|| {
            before_acquire(&a, Mode::Exclusive);
        }))
        .expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("LOCK-ORDER INVERSION"), "msg: {msg}");
        assert!(msg.contains("test.cycle_a"), "msg: {msg}");
        assert!(msg.contains("test.cycle_b"), "msg: {msg}");
        assert!(msg.contains("acquisition"), "msg: {msg}");
        release(hb);
    }

    #[test]
    fn transitive_cycle_detected() {
        let _serial = test_lock();
        enable();
        let a = LockTag::named("test.tri_a");
        let b = LockTag::named("test.tri_b");
        let c = LockTag::named("test.tri_c");
        for (x, y) in [(&a, &b), (&b, &c)] {
            let hx = acquire(x, Mode::Exclusive);
            let hy = acquire(y, Mode::Exclusive);
            release(hy);
            release(hx);
        }
        let hc = acquire(&c, Mode::Exclusive);
        let err = catch_unwind(AssertUnwindSafe(|| {
            before_acquire(&a, Mode::Exclusive);
        }))
        .expect_err("transitive inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("test.tri_a") && msg.contains("test.tri_c"),
            "msg: {msg}"
        );
        release(hc);
    }

    #[test]
    fn same_instance_relock_panics() {
        let _serial = test_lock();
        enable();
        let a = LockTag::named("test.relock");
        let ha = acquire(&a, Mode::Exclusive);
        let err = catch_unwind(AssertUnwindSafe(|| {
            before_acquire(&a, Mode::Exclusive);
        }))
        .expect_err("self-relock must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("relock"), "msg: {msg}");
        release(ha);
    }

    #[test]
    fn same_label_instance_nesting_panics() {
        let _serial = test_lock();
        enable();
        let a1 = LockTag::named("test.shardlike");
        let a2 = LockTag::named("test.shardlike");
        let h1 = acquire(&a1, Mode::Exclusive);
        let err = catch_unwind(AssertUnwindSafe(|| {
            before_acquire(&a2, Mode::Exclusive);
        }))
        .expect_err("same-label nesting must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test.shardlike"), "msg: {msg}");
        release(h1);
    }

    #[test]
    fn holding_reflects_thread_stack() {
        let _serial = test_lock();
        enable();
        assert!(!holding("test.holding"));
        let a = LockTag::named("test.holding");
        let ha = acquire(&a, Mode::Exclusive);
        assert!(holding("test.holding"));
        assert!(held_labels().contains(&"test.holding"));
        release(ha);
        assert!(!holding("test.holding"));
    }

    #[test]
    fn condvar_release_and_reacquire_roundtrip() {
        let _serial = test_lock();
        enable();
        let a = LockTag::named("test.cv");
        let ha = acquire(&a, Mode::Exclusive);
        let ticket = condvar_release(ha).expect("was held");
        assert!(!holding("test.cv"));
        let ha = reacquire(ticket);
        assert!(holding("test.cv"));
        release(ha);
    }

    #[test]
    fn out_of_order_release_is_fine() {
        let _serial = test_lock();
        enable();
        let a = LockTag::named("test.ooo_a");
        let b = LockTag::named("test.ooo_b");
        let ha = acquire(&a, Mode::Exclusive);
        let hb = acquire(&b, Mode::Exclusive);
        release(ha); // drop outer first
        assert!(holding("test.ooo_b"));
        release(hb);
        assert!(held_labels().is_empty());
    }

    #[test]
    fn stats_accumulate_per_label() {
        let _serial = test_lock();
        enable();
        let a = LockTag::named("test.stats");
        let ha = acquire(&a, Mode::Exclusive);
        release(ha);
        let p = before_acquire(&a, Mode::Exclusive).expect("enabled");
        let ha = after_acquire(p, true, 1234);
        release(ha);
        let snap = stats_snapshot();
        let s = snap
            .iter()
            .find(|s| s.label == "test.stats")
            .expect("label tracked");
        assert!(s.acquisitions >= 2);
        assert!(s.contended >= 1);
        assert!(s.block_ns >= 1234);
    }

    #[test]
    fn perturb_trace_is_deterministic_per_seed() {
        let _serial = test_lock();
        let t1 = perturb_trace(42, 0, 256);
        let t2 = perturb_trace(42, 0, 256);
        assert_eq!(t1, t2);
        let t3 = perturb_trace(43, 0, 256);
        assert_ne!(t1, t3, "different seeds should diverge within 256 draws");
        let t4 = perturb_trace(42, 1, 256);
        assert_ne!(t1, t4, "threads derive distinct streams");
        // All three action classes occur in a modest window.
        assert!(t1.contains(&0) && t1.contains(&1) && t1.iter().any(|&d| d >= 2));
    }

    #[test]
    fn disabled_checker_is_inert() {
        let _serial = test_lock();
        // Uses its own tag; even if another test enabled checking, a
        // disabled window must return None.
        disable();
        let a = LockTag::named("test.inert");
        assert!(before_acquire(&a, Mode::Exclusive).is_none());
        assert!(!holding("test.inert"));
        enable();
    }
}
