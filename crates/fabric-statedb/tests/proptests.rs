//! Property-based tests for the state database: MVCC semantics and the
//! bounded store's capacity/locking invariants.

use fabric_statedb::{BoundedStateDb, Height, StateDb, WriteBatch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn last_write_wins(ops in proptest::collection::vec(("[a-d]", any::<u8>()), 1..64)) {
        let db = StateDb::new();
        let mut expected = std::collections::HashMap::new();
        for (i, (key, value)) in ops.iter().enumerate() {
            let mut b = WriteBatch::new();
            b.put(key.clone(), vec![*value]);
            db.apply(&b, Height::new(1, i as u64));
            expected.insert(key.clone(), (*value, i as u64));
        }
        for (key, (value, tx)) in expected {
            let got = db.get(&key).unwrap();
            prop_assert_eq!(got.value, vec![value]);
            prop_assert_eq!(got.version, Height::new(1, tx));
        }
    }

    #[test]
    fn mvcc_accepts_exactly_current_versions(keys in proptest::collection::vec("[a-f]{1,4}", 1..16)) {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for k in &keys {
            b.put(k.clone(), b"x".to_vec());
        }
        db.apply(&b, Height::new(3, 7));
        // Reading current versions validates...
        let reads: Vec<(String, Option<Height>)> =
            keys.iter().map(|k| (k.clone(), Some(Height::new(3, 7)))).collect();
        prop_assert!(db.mvcc_validate(&reads));
        // ...any stale version fails.
        let stale: Vec<(String, Option<Height>)> =
            keys.iter().map(|k| (k.clone(), Some(Height::new(2, 0)))).collect();
        prop_assert!(!db.mvcc_validate(&stale));
    }

    #[test]
    fn bounded_never_exceeds_capacity(
        capacity in 1usize..16,
        keys in proptest::collection::vec("[a-z]{1,6}", 0..64),
    ) {
        let mut db = BoundedStateDb::new(capacity);
        for (i, k) in keys.iter().enumerate() {
            let _ = db.put(k, vec![1], Height::new(1, i as u64));
            prop_assert!(db.len() <= capacity);
        }
    }

    #[test]
    fn bounded_overwrites_always_succeed(keys in proptest::collection::vec("[a-c]", 1..32)) {
        // Capacity 3 fits the whole alphabet {a,b,c}; overwrites must
        // never report Full.
        let mut db = BoundedStateDb::new(3);
        for (i, k) in keys.iter().enumerate() {
            prop_assert!(db.put(k, vec![i as u8], Height::new(1, i as u64)).is_ok());
        }
    }

    #[test]
    fn range_boundaries_match_reference(
        entries in proptest::collection::btree_map("[a-e]{1,3}", any::<u8>(), 0..16),
        start in "[a-e]{1,3}",
    ) {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for (k, v) in &entries {
            b.put(k.clone(), vec![*v]);
        }
        db.apply(&b, Height::new(1, 0));
        // start == end: always empty, even when `start` is a live key.
        prop_assert!(db.range(&start, &start).is_empty());
        // Degenerate/empty windows never panic and match BTreeMap.
        let next = format!("{start}\u{0}");
        let got: Vec<String> = db.range(&start, &next).into_iter().map(|(k, _)| k).collect();
        let expected: Vec<String> = entries
            .range(start.clone()..next)
            .map(|(k, _)| k.clone())
            .collect();
        prop_assert_eq!(got, expected);
        // The empty string is below every key: ["", start) is a prefix
        // scan, ["", "") is empty.
        prop_assert!(db.range("", "").is_empty());
        let below: Vec<String> = db.range("", &start).into_iter().map(|(k, _)| k).collect();
        prop_assert!(below.iter().all(|k| k.as_str() < start.as_str()));
    }

    #[test]
    fn write_batch_apply_is_last_op_wins(
        ops in proptest::collection::vec(("[a-c]", proptest::option::of(any::<u8>())), 1..24),
    ) {
        // One batch mixing puts and deletes of overlapping keys: apply
        // must behave as if each op ran in sequence (delete-then-put
        // leaves the put, put-then-delete leaves nothing), with every
        // surviving entry stamped at the batch height.
        let db = StateDb::new();
        let mut seed = WriteBatch::new();
        seed.put("a", b"seed".to_vec());
        db.apply(&seed, Height::new(1, 0));

        let batch: WriteBatch = ops
            .iter()
            .map(|(k, v)| (k.clone(), v.map(|b| vec![b])))
            .collect();
        let height = Height::new(2, 5);
        db.apply(&batch, height);

        let mut reference: std::collections::BTreeMap<String, Option<Vec<u8>>> =
            [("a".to_string(), Some(b"seed".to_vec()))].into_iter().collect();
        for (k, v) in &ops {
            reference.insert(k.clone(), v.map(|b| vec![b]));
        }
        for (key, expected) in reference {
            match (db.get(&key), expected) {
                (Some(got), Some(want)) => {
                    prop_assert_eq!(&got.value, &want);
                    // Survivors written by THIS batch carry its height;
                    // the untouched seed keeps Height(1, 0).
                    let touched = ops.iter().any(|(k, _)| *k == key);
                    let want_height = if touched { height } else { Height::new(1, 0) };
                    prop_assert_eq!(got.version, want_height);
                }
                (None, None) => {}
                (got, want) => {
                    return Err(TestCaseError(format!(
                        "key {key:?}: got {got:?}, want {want:?}"
                    )));
                }
            }
        }
    }

    #[test]
    fn empty_batch_changes_nothing_but_advances_tip(
        heights in proptest::collection::vec((0u64..8, 0u64..8), 1..8),
    ) {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("k", vec![1]);
        db.apply(&b, Height::new(0, 0));
        let before = db.snapshot();
        let mut max = Height::new(0, 0);
        for (bn, tn) in heights {
            let h = Height::new(bn, tn);
            db.apply(&WriteBatch::new(), h);
            max = max.max(h);
            // tip is a high-water mark even for no-op commits...
            prop_assert_eq!(db.tip_height(), Some(max));
        }
        // ...and contents are untouched.
        prop_assert_eq!(db.snapshot(), before);
    }

    #[test]
    fn range_scan_matches_reference(
        entries in proptest::collection::btree_map("[a-z]{1,5}", any::<u8>(), 0..32),
        bounds in ("[a-z]{1,2}", "[a-z]{1,2}"),
    ) {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for (k, v) in &entries {
            b.put(k.clone(), vec![*v]);
        }
        db.apply(&b, Height::new(1, 0));
        let (lo, hi) = bounds;
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let got: Vec<String> = db.range(&lo, &hi).into_iter().map(|(k, _)| k).collect();
        let expected: Vec<String> = entries
            .range(lo..hi)
            .map(|(k, _)| k.clone())
            .collect();
        prop_assert_eq!(got, expected);
    }
}
