//! Property-based tests for the state database: MVCC semantics and the
//! bounded store's capacity/locking invariants.

use fabric_statedb::{BoundedStateDb, Height, StateDb, WriteBatch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn last_write_wins(ops in proptest::collection::vec(("[a-d]", any::<u8>()), 1..64)) {
        let db = StateDb::new();
        let mut expected = std::collections::HashMap::new();
        for (i, (key, value)) in ops.iter().enumerate() {
            let mut b = WriteBatch::new();
            b.put(key.clone(), vec![*value]);
            db.apply(&b, Height::new(1, i as u64));
            expected.insert(key.clone(), (*value, i as u64));
        }
        for (key, (value, tx)) in expected {
            let got = db.get(&key).unwrap();
            prop_assert_eq!(got.value, vec![value]);
            prop_assert_eq!(got.version, Height::new(1, tx));
        }
    }

    #[test]
    fn mvcc_accepts_exactly_current_versions(keys in proptest::collection::vec("[a-f]{1,4}", 1..16)) {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for k in &keys {
            b.put(k.clone(), b"x".to_vec());
        }
        db.apply(&b, Height::new(3, 7));
        // Reading current versions validates...
        let reads: Vec<(String, Option<Height>)> =
            keys.iter().map(|k| (k.clone(), Some(Height::new(3, 7)))).collect();
        prop_assert!(db.mvcc_validate(&reads));
        // ...any stale version fails.
        let stale: Vec<(String, Option<Height>)> =
            keys.iter().map(|k| (k.clone(), Some(Height::new(2, 0)))).collect();
        prop_assert!(!db.mvcc_validate(&stale));
    }

    #[test]
    fn bounded_never_exceeds_capacity(
        capacity in 1usize..16,
        keys in proptest::collection::vec("[a-z]{1,6}", 0..64),
    ) {
        let mut db = BoundedStateDb::new(capacity);
        for (i, k) in keys.iter().enumerate() {
            let _ = db.put(k, vec![1], Height::new(1, i as u64));
            prop_assert!(db.len() <= capacity);
        }
    }

    #[test]
    fn bounded_overwrites_always_succeed(keys in proptest::collection::vec("[a-c]", 1..32)) {
        // Capacity 3 fits the whole alphabet {a,b,c}; overwrites must
        // never report Full.
        let mut db = BoundedStateDb::new(3);
        for (i, k) in keys.iter().enumerate() {
            prop_assert!(db.put(k, vec![i as u8], Height::new(1, i as u64)).is_ok());
        }
    }

    #[test]
    fn range_scan_matches_reference(
        entries in proptest::collection::btree_map("[a-z]{1,5}", any::<u8>(), 0..32),
        bounds in ("[a-z]{1,2}", "[a-z]{1,2}"),
    ) {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for (k, v) in &entries {
            b.put(k.clone(), vec![*v]);
        }
        db.apply(&b, Height::new(1, 0));
        let (lo, hi) = bounds;
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let got: Vec<String> = db.range(&lo, &hi).into_iter().map(|(k, _)| k).collect();
        let expected: Vec<String> = entries
            .range(lo..hi)
            .map(|(k, _)| k.clone())
            .collect();
        prop_assert_eq!(got, expected);
    }
}
