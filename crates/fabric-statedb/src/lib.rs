//! Versioned key-value state database (the LevelDB role in Fabric).
//!
//! Each peer "maintains its own copy of the ledger and current global
//! state of the data in a state database" (paper §2.1.1). Values are
//! versioned by *height* — the `(block, tx)` coordinate of the committing
//! transaction — and the MVCC check of the validation phase compares the
//! version observed at endorsement time against the current version
//! (paper §2.1.2 step 3).
//!
//! Two stores are provided:
//!
//! * [`StateDb`] — the unbounded, thread-safe store used by software
//!   peers;
//! * [`BoundedStateDb`] — a capacity-limited store with an explicit
//!   read/write-lock discipline, modeling the in-hardware BRAM/URAM
//!   key-value store of the Blockchain Machine (paper §3.3: 8192 entries,
//!   "internal locking mechanism to disallow reading of a key if it is
//!   currently being written").

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// A `(block, tx)` height: the version tag Fabric stores with each value
/// ("its version created from block number and transaction sequence
/// number", paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Height {
    /// Committing block number.
    pub block_num: u64,
    /// Transaction index within the block.
    pub tx_num: u64,
}

impl Height {
    /// Creates a height.
    pub fn new(block_num: u64, tx_num: u64) -> Self {
        Height { block_num, tx_num }
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block_num, self.tx_num)
    }
}

/// A stored value with its version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The application value.
    pub value: Vec<u8>,
    /// Height of the transaction that wrote it.
    pub version: Height,
}

/// A batch of writes applied atomically at commit.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    entries: Vec<(String, Option<Vec<u8>>)>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queues a put.
    pub fn put(&mut self, key: impl Into<String>, value: Vec<u8>) -> &mut Self {
        self.entries.push((key.into(), Some(value)));
        self
    }

    /// Queues a delete.
    pub fn delete(&mut self, key: impl Into<String>) -> &mut Self {
        self.entries.push((key.into(), None));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value-or-delete)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Option<&[u8]>)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_deref()))
    }
}

impl FromIterator<(String, Option<Vec<u8>>)> for WriteBatch {
    fn from_iter<I: IntoIterator<Item = (String, Option<Vec<u8>>)>>(iter: I) -> Self {
        WriteBatch {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Option<Vec<u8>>)> for WriteBatch {
    fn extend<I: IntoIterator<Item = (String, Option<Vec<u8>>)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// A write-ahead journal attached to a [`StateDb`].
///
/// When a sink is attached (see [`StateDb::attach_journal`]), every
/// [`StateDb::apply`] forwards the batch and height to the sink *before*
/// mutating the in-memory map — the write-ahead ordering a durable
/// backend (`fabric-store`'s state journal) needs so that any state a
/// reader can observe is also recoverable from the journal. Empty
/// batches are journaled too: recovery counts one record per valid
/// transaction, including transactions with empty write sets.
///
/// Sinks must be infallible from the caller's perspective; a durable
/// implementation that cannot write its journal should panic rather
/// than let commits proceed unlogged.
pub trait JournalSink: Send + Sync + std::fmt::Debug {
    /// Records one batch at its commit height, before it becomes
    /// visible in memory.
    fn record(&self, batch: &WriteBatch, height: Height);
    /// Forces buffered journal bytes down to the backing medium (the
    /// group-commit boundary).
    fn flush(&self);
}

/// Statistics counters for a state database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateDbStats {
    /// Total point reads served.
    pub reads: u64,
    /// Total writes applied.
    pub writes: u64,
    /// Reads that found no value.
    pub misses: u64,
}

/// The unbounded, thread-safe versioned store used by software peers.
///
/// Cloning is cheap: clones share the same underlying map, matching how a
/// peer's components all see one state database.
///
/// ```
/// use fabric_statedb::{Height, StateDb, WriteBatch};
/// let db = StateDb::new();
/// let mut batch = WriteBatch::new();
/// batch.put("k", b"v".to_vec());
/// db.apply(&batch, Height::new(1, 0));
/// assert_eq!(db.get("k").unwrap().value, b"v");
/// ```
#[derive(Debug, Clone, Default)]
pub struct StateDb {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    map: BTreeMap<String, VersionedValue>,
    stats: StateDbStats,
    /// High-water mark of heights passed to [`StateDb::apply`]. The
    /// validator's commit stage debug-asserts against it that block
    /// writes land in strictly increasing block order (the invariant the
    /// streaming commit sequencer exists to preserve).
    tip: Option<Height>,
    /// Optional write-ahead journal; [`StateDb::apply`] forwards every
    /// batch here before mutating the map.
    journal: Option<Arc<dyn JournalSink>>,
}

impl StateDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        StateDb::default()
    }

    /// Rebuilds a database from a checkpoint snapshot: the entries of a
    /// previous [`StateDb::snapshot`] plus the tip height recorded with
    /// it. The journal replay that follows a snapshot restore continues
    /// from this tip.
    pub fn from_snapshot(entries: Vec<(String, VersionedValue)>, tip: Option<Height>) -> Self {
        StateDb {
            inner: Arc::new(RwLock::new(Inner {
                map: entries.into_iter().collect(),
                stats: StateDbStats::default(),
                tip,
                journal: None,
            })),
        }
    }

    /// Attaches a write-ahead journal sink. Every subsequent
    /// [`StateDb::apply`] records to the sink before touching the map.
    /// Attach *after* recovery replay so replayed batches are not
    /// re-journaled.
    pub fn attach_journal(&self, sink: Arc<dyn JournalSink>) {
        self.inner.write().journal = Some(sink);
    }

    /// Flushes the attached journal (a no-op without one): the durable
    /// group-commit boundary.
    pub fn flush_journal(&self) {
        let sink = self.inner.read().journal.clone();
        if let Some(sink) = sink {
            sink.flush();
        }
    }

    /// Point read of the current value and version.
    pub fn get(&self, key: &str) -> Option<VersionedValue> {
        let mut g = self.inner.write();
        g.stats.reads += 1;
        let hit = g.map.get(key).cloned();
        if hit.is_none() {
            g.stats.misses += 1;
        }
        hit
    }

    /// Reads just the version (the MVCC hot path).
    pub fn get_version(&self, key: &str) -> Option<Height> {
        self.get(key).map(|v| v.version)
    }

    /// Applies a write batch, stamping every entry at `height`. With a
    /// journal attached the batch is recorded first (write-ahead), under
    /// the same lock that orders the in-memory apply — so the journal's
    /// record order is exactly the apply order. Sinks must not call back
    /// into this database.
    pub fn apply(&self, batch: &WriteBatch, height: Height) {
        let mut g = self.inner.write();
        if let Some(journal) = &g.journal {
            journal.record(batch, height);
        }
        Self::apply_locked(&mut g, batch, height);
    }

    /// Re-applies a journaled batch during recovery: identical to
    /// [`StateDb::apply`] except the batch is *never* forwarded to an
    /// attached journal (replaying must not re-journal).
    pub fn replay(&self, batch: &WriteBatch, height: Height) {
        let mut g = self.inner.write();
        Self::apply_locked(&mut g, batch, height);
    }

    fn apply_locked(g: &mut Inner, batch: &WriteBatch, height: Height) {
        g.tip = Some(match g.tip {
            Some(tip) => tip.max(height),
            None => height,
        });
        for (key, value) in batch.iter() {
            g.stats.writes += 1;
            match value {
                Some(v) => {
                    g.map.insert(
                        key.to_string(),
                        VersionedValue {
                            value: v.to_vec(),
                            version: height,
                        },
                    );
                }
                None => {
                    g.map.remove(key);
                }
            }
        }
    }

    /// Range scan over `[start, end)`, in key order.
    pub fn range(&self, start: &str, end: &str) -> Vec<(String, VersionedValue)> {
        let g = self.inner.read();
        g.map
            .range(start.to_string()..end.to_string())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// Whether the store has no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> StateDbStats {
        self.inner.read().stats
    }

    /// Highest height ever passed to [`StateDb::apply`], or `None` for a
    /// database that has never committed. Commit heights in Fabric are
    /// monotone, so this is "the visibility horizon": a reader at this
    /// height sees every committed write.
    pub fn tip_height(&self) -> Option<Height> {
        self.inner.read().tip
    }

    /// Full ordered dump of the live keys with values and versions — the
    /// serial-equivalence harness compares final database contents with
    /// this (a `range` over the whole keyspace would need a sentinel
    /// upper bound).
    ///
    /// The dump is assembled from bounded chunks
    /// ([`SNAPSHOT_CHUNK`] entries per lock acquisition, see
    /// [`StateDb::snapshot_chunks`]), so a checkpoint of a large store
    /// no longer stalls concurrent [`StateDb::apply`] writers for the
    /// whole copy. Quiesced (no concurrent writers) the result is an
    /// exact point-in-time image; under concurrency it is a *fuzzy*
    /// snapshot — consistent per chunk, and callers needing exactness
    /// (crash recovery) must replay a journal tail over it, which is
    /// precisely what `fabric-store` checkpointing does.
    pub fn snapshot(&self) -> Vec<(String, VersionedValue)> {
        self.snapshot_chunks(SNAPSHOT_CHUNK).flatten().collect()
    }

    /// Chunked snapshot iterator: each `next()` acquires the read lock,
    /// clones up to `chunk` entries starting after the previous chunk's
    /// last key, and releases the lock — writers interleave freely
    /// between chunks. Keys are yielded in ascending order; a key
    /// inserted *behind* the cursor mid-scan is not revisited.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn snapshot_chunks(&self, chunk: usize) -> SnapshotChunks {
        assert!(chunk > 0, "snapshot chunk size must be non-zero");
        SnapshotChunks {
            db: self.clone(),
            cursor: None,
            chunk,
            done: false,
        }
    }

    /// MVCC validation of a read set: every `(key, expected)` pair must
    /// match the current version exactly ("the read set of each
    /// transaction is computed again by accessing the state database, and
    /// is compared to the read set from the endorsement phase",
    /// paper §2.1.2).
    pub fn mvcc_validate(&self, reads: &[(String, Option<Height>)]) -> bool {
        reads
            .iter()
            .all(|(key, expected)| self.get_version(key) == *expected)
    }
}

/// Entries cloned per lock acquisition by [`StateDb::snapshot`]: large
/// enough to amortize the lock round-trip, small enough that a writer
/// blocked behind a chunk waits microseconds, not the whole copy.
pub const SNAPSHOT_CHUNK: usize = 1024;

/// Iterator over bounded snapshot chunks of a [`StateDb`]; see
/// [`StateDb::snapshot_chunks`].
#[derive(Debug)]
pub struct SnapshotChunks {
    db: StateDb,
    /// Last key yielded by the previous chunk; the next chunk resumes
    /// strictly after it.
    cursor: Option<String>,
    chunk: usize,
    done: bool,
}

impl Iterator for SnapshotChunks {
    type Item = Vec<(String, VersionedValue)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let batch: Vec<(String, VersionedValue)> = {
            let g = self.db.inner.read();
            let range = match &self.cursor {
                Some(last) => g.map.range::<str, _>((
                    std::ops::Bound::Excluded(last.as_str()),
                    std::ops::Bound::Unbounded,
                )),
                None => g.map.range::<str, _>((
                    std::ops::Bound::<&str>::Unbounded,
                    std::ops::Bound::Unbounded,
                )),
            };
            range
                .take(self.chunk)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if batch.len() < self.chunk {
            self.done = true;
        }
        let last = batch.last()?;
        self.cursor = Some(last.0.clone());
        Some(batch)
    }
}

/// Outcome of a bounded-store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedDbError {
    /// The store is at capacity and the key was not already present.
    Full {
        /// Configured entry capacity.
        capacity: usize,
    },
    /// The key is currently locked by a writer.
    Locked,
}

impl fmt::Display for BoundedDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundedDbError::Full { capacity } => {
                write!(f, "in-hardware state database full ({capacity} entries)")
            }
            BoundedDbError::Locked => write!(f, "key is locked by an in-flight write"),
        }
    }
}

impl std::error::Error for BoundedDbError {}

/// Capacity-limited store modeling the Blockchain Machine's in-hardware
/// database (BRAM/URAM, 8192 entries in the paper's configuration).
///
/// Writes take a per-key lock for the duration of
/// [`BoundedStateDb::begin_write`] .. [`BoundedStateDb::finish_write`];
/// reads of a locked key fail with [`BoundedDbError::Locked`],
/// reproducing the hardware's "internal locking mechanism to disallow
/// reading of a key if it is currently being written" (paper §3.3).
#[derive(Debug)]
pub struct BoundedStateDb {
    map: BTreeMap<String, VersionedValue>,
    locked: std::collections::HashSet<String>,
    capacity: usize,
    stats: StateDbStats,
}

/// The paper's configured in-hardware database capacity (§4.1).
pub const HW_DB_DEFAULT_CAPACITY: usize = 8192;

impl BoundedStateDb {
    /// Creates a store holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        BoundedStateDb {
            map: BTreeMap::new(),
            locked: std::collections::HashSet::new(),
            capacity,
            stats: StateDbStats::default(),
        }
    }

    /// Point read; fails when the key is write-locked.
    ///
    /// # Errors
    ///
    /// [`BoundedDbError::Locked`] if a write is in flight on `key`.
    pub fn get(&mut self, key: &str) -> Result<Option<VersionedValue>, BoundedDbError> {
        if self.locked.contains(key) {
            return Err(BoundedDbError::Locked);
        }
        self.stats.reads += 1;
        let hit = self.map.get(key).cloned();
        if hit.is_none() {
            self.stats.misses += 1;
        }
        Ok(hit)
    }

    /// Reads just the version.
    ///
    /// # Errors
    ///
    /// [`BoundedDbError::Locked`] if a write is in flight on `key`.
    pub fn get_version(&mut self, key: &str) -> Result<Option<Height>, BoundedDbError> {
        Ok(self.get(key)?.map(|v| v.version))
    }

    /// Acquires the write lock on `key` (the hardware write port claiming
    /// the address).
    ///
    /// # Errors
    ///
    /// [`BoundedDbError::Locked`] when already locked, or
    /// [`BoundedDbError::Full`] when the key is new and capacity is
    /// exhausted.
    pub fn begin_write(&mut self, key: &str) -> Result<(), BoundedDbError> {
        if self.locked.contains(key) {
            return Err(BoundedDbError::Locked);
        }
        if !self.map.contains_key(key) && self.map.len() + self.locked.len() >= self.capacity {
            return Err(BoundedDbError::Full {
                capacity: self.capacity,
            });
        }
        self.locked.insert(key.to_string());
        Ok(())
    }

    /// Completes a write started with [`BoundedStateDb::begin_write`].
    ///
    /// # Panics
    ///
    /// Panics if the key was not locked — that is a protocol bug in the
    /// caller, not a runtime condition.
    pub fn finish_write(&mut self, key: &str, value: Vec<u8>, version: Height) {
        assert!(
            self.locked.remove(key),
            "finish_write without begin_write: {key}"
        );
        self.stats.writes += 1;
        self.map
            .insert(key.to_string(), VersionedValue { value, version });
    }

    /// Convenience: locked write in one call.
    ///
    /// # Errors
    ///
    /// Same as [`BoundedStateDb::begin_write`].
    pub fn put(
        &mut self,
        key: &str,
        value: Vec<u8>,
        version: Height,
    ) -> Result<(), BoundedDbError> {
        self.begin_write(key)?;
        self.finish_write(key, value, version);
        Ok(())
    }

    /// Number of committed entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> StateDbStats {
        self.stats
    }
}

impl Default for BoundedStateDb {
    fn default() -> Self {
        BoundedStateDb::new(HW_DB_DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        assert_eq!(db.get("a").unwrap().value, b"1");
        assert_eq!(db.get_version("a"), Some(Height::new(1, 0)));
        assert_eq!(db.get("missing"), None);
    }

    #[test]
    fn later_write_bumps_version() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        db.apply(&b, Height::new(2, 3));
        assert_eq!(db.get_version("a"), Some(Height::new(2, 3)));
    }

    #[test]
    fn delete_removes_key() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        let mut d = WriteBatch::new();
        d.delete("a");
        db.apply(&d, Height::new(2, 0));
        assert_eq!(db.get("a"), None);
    }

    #[test]
    fn mvcc_validation_semantics() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        // matching version -> valid
        assert!(db.mvcc_validate(&[("a".into(), Some(Height::new(1, 0)))]));
        // stale version -> conflict
        assert!(!db.mvcc_validate(&[("a".into(), Some(Height::new(0, 0)))]));
        // read of a missing key expected missing -> valid
        assert!(db.mvcc_validate(&[("nope".into(), None)]));
        // key appeared since endorsement -> conflict
        assert!(!db.mvcc_validate(&[("a".into(), None)]));
    }

    #[test]
    fn range_scan_is_ordered() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for k in ["b", "a", "c", "d"] {
            b.put(k, k.as_bytes().to_vec());
        }
        db.apply(&b, Height::new(1, 0));
        let keys: Vec<String> = db.range("a", "d").into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn stats_track_reads_and_misses() {
        let db = StateDb::new();
        db.get("x");
        let mut b = WriteBatch::new();
        b.put("x", vec![1]);
        db.apply(&b, Height::new(1, 0));
        db.get("x");
        let s = db.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn clones_share_state() {
        let db = StateDb::new();
        let db2 = db.clone();
        let mut b = WriteBatch::new();
        b.put("k", vec![7]);
        db.apply(&b, Height::new(1, 0));
        assert_eq!(db2.get("k").unwrap().value, vec![7]);
    }

    #[test]
    fn bounded_capacity_enforced() {
        let mut db = BoundedStateDb::new(2);
        db.put("a", vec![1], Height::new(1, 0)).unwrap();
        db.put("b", vec![2], Height::new(1, 1)).unwrap();
        assert_eq!(
            db.put("c", vec![3], Height::new(1, 2)),
            Err(BoundedDbError::Full { capacity: 2 })
        );
        // overwriting an existing key is fine at capacity
        db.put("a", vec![9], Height::new(2, 0)).unwrap();
        assert_eq!(db.get("a").unwrap().unwrap().value, vec![9]);
    }

    #[test]
    fn bounded_lock_blocks_reads() {
        let mut db = BoundedStateDb::new(8);
        db.put("k", vec![1], Height::new(1, 0)).unwrap();
        db.begin_write("k").unwrap();
        assert_eq!(db.get("k"), Err(BoundedDbError::Locked));
        assert_eq!(db.begin_write("k"), Err(BoundedDbError::Locked));
        db.finish_write("k", vec![2], Height::new(2, 0));
        assert_eq!(db.get("k").unwrap().unwrap().value, vec![2]);
    }

    #[test]
    #[should_panic(expected = "finish_write without begin_write")]
    fn bounded_finish_without_begin_panics() {
        let mut db = BoundedStateDb::new(8);
        db.finish_write("k", vec![1], Height::new(1, 0));
    }

    #[test]
    fn bounded_locked_slots_count_toward_capacity() {
        let mut db = BoundedStateDb::new(1);
        db.begin_write("a").unwrap();
        assert_eq!(
            db.begin_write("b"),
            Err(BoundedDbError::Full { capacity: 1 })
        );
        db.finish_write("a", vec![1], Height::new(1, 0));
    }

    #[test]
    fn default_capacity_matches_paper() {
        let db = BoundedStateDb::default();
        assert_eq!(db.capacity(), 8192);
    }

    type RecordedBatch = (Vec<(String, Option<Vec<u8>>)>, Height);

    #[derive(Debug, Default)]
    struct RecordingSink {
        records: parking_lot::Mutex<Vec<RecordedBatch>>,
        flushes: std::sync::atomic::AtomicUsize,
    }

    impl JournalSink for RecordingSink {
        fn record(&self, batch: &WriteBatch, height: Height) {
            self.records.lock().push((
                batch
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.map(|b| b.to_vec())))
                    .collect(),
                height,
            ));
        }

        fn flush(&self) {
            self.flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn journal_sink_sees_every_apply_including_empty_batches() {
        let db = StateDb::new();
        let sink = Arc::new(RecordingSink::default());
        db.attach_journal(sink.clone());
        let mut b = WriteBatch::new();
        b.put("a", vec![1]);
        db.apply(&b, Height::new(1, 0));
        // Empty batches must be journaled too: recovery counts one
        // record per valid transaction.
        db.apply(&WriteBatch::new(), Height::new(1, 1));
        let records = sink.records.lock();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].1, Height::new(1, 0));
        assert_eq!(records[1].0.len(), 0);
        drop(records);
        db.flush_journal();
        assert_eq!(sink.flushes.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn replay_does_not_rejournal() {
        let db = StateDb::new();
        let sink = Arc::new(RecordingSink::default());
        db.attach_journal(sink.clone());
        let mut b = WriteBatch::new();
        b.put("a", vec![1]);
        db.replay(&b, Height::new(3, 0));
        assert!(sink.records.lock().is_empty(), "replay must not journal");
        assert_eq!(db.get("a").unwrap().version, Height::new(3, 0));
        assert_eq!(db.tip_height(), Some(Height::new(3, 0)));
    }

    #[test]
    fn snapshot_restore_roundtrips_values_and_tip() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", vec![1]);
        b.put("b", vec![2]);
        db.apply(&b, Height::new(4, 1));
        let restored = StateDb::from_snapshot(db.snapshot(), db.tip_height());
        assert_eq!(restored.snapshot(), db.snapshot());
        assert_eq!(restored.tip_height(), Some(Height::new(4, 1)));
    }

    #[test]
    fn snapshot_chunks_release_the_lock_so_applies_interleave() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for i in 0..10 {
            b.put(format!("k{i:02}"), vec![i]);
        }
        db.apply(&b, Height::new(1, 0));

        // Pull one chunk, then apply ON THE SAME THREAD before pulling
        // the rest: with the old whole-map-under-one-read-lock snapshot
        // this interleaving was impossible (the lock spanned the copy);
        // with chunking the write-lock acquisition inside apply()
        // succeeds between chunks.
        let mut chunks = db.snapshot_chunks(3);
        let first = chunks.next().unwrap();
        assert_eq!(first.len(), 3);

        let mut w = WriteBatch::new();
        w.put("k00", vec![99]); // behind the cursor: not revisited
        w.put("k99", vec![42]); // ahead of the cursor: picked up
        db.apply(&w, Height::new(2, 0));

        let rest: Vec<_> = chunks.flatten().collect();
        let mut all = first;
        all.extend(rest);
        // Ascending, duplicate-free key order across chunk boundaries.
        let keys: Vec<&str> = all.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        // The fuzzy-snapshot contract: the ahead-of-cursor write is
        // visible, the behind-the-cursor one keeps its chunk-time value.
        assert_eq!(all.iter().find(|(k, _)| k == "k99").unwrap().1.value, [42]);
        assert_eq!(all.iter().find(|(k, _)| k == "k00").unwrap().1.value, [0]);
    }

    #[test]
    fn quiescent_chunked_snapshot_is_exact() {
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        for i in 0..257 {
            b.put(format!("key{i:04}"), vec![(i % 251) as u8]);
        }
        db.apply(&b, Height::new(1, 0));
        // With no concurrent writers, chunked assembly must equal the
        // ordered dump regardless of chunk size (including sizes that
        // do not divide the key count).
        for chunk in [1, 3, 64, 256, 1000] {
            let assembled: Vec<_> = db.snapshot_chunks(chunk).flatten().collect();
            assert_eq!(assembled, db.snapshot(), "chunk={chunk}");
        }
        assert_eq!(db.snapshot().len(), 257);
    }

    #[test]
    fn write_batch_from_iterator() {
        let batch: WriteBatch = vec![("a".to_string(), Some(vec![1])), ("b".to_string(), None)]
            .into_iter()
            .collect();
        assert_eq!(batch.len(), 2);
    }
}
