//! Versioned key-value state database (the LevelDB role in Fabric).
//!
//! Each peer "maintains its own copy of the ledger and current global
//! state of the data in a state database" (paper §2.1.1). Values are
//! versioned by *height* — the `(block, tx)` coordinate of the committing
//! transaction — and the MVCC check of the validation phase compares the
//! version observed at endorsement time against the current version
//! (paper §2.1.2 step 3).
//!
//! Three stores are provided:
//!
//! * [`StateDb`] — the unbounded, thread-safe store used by software
//!   peers. Since the sharded-MVCC rework it is a *facade* over two
//!   interchangeable backends (see below);
//! * [`LegacyStateDb`] — the original single-map-single-lock store,
//!   kept fully compiled as the **differential oracle** (the
//!   fp256/fq256 convention: the old path stays selectable so the
//!   equivalence harness can hold the new one to bit-identical
//!   results);
//! * [`ShardedStateDb`] — the hash-sharded MVCC store: per-shard
//!   version-chained maps so reads can pin a height snapshot without
//!   blocking the committer, a k-way merged ordered index preserving
//!   range/prefix scans, and per-shard write batches so a block's
//!   commit goes wide over disjoint shards;
//! * [`BoundedStateDb`] — a capacity-limited store with an explicit
//!   read/write-lock discipline, modeling the in-hardware BRAM/URAM
//!   key-value store of the Blockchain Machine (paper §3.3: 8192
//!   entries, "internal locking mechanism to disallow reading of a key
//!   if it is currently being written").
//!
//! # Selecting a backend
//!
//! [`StateDb::new`] consults [`default_state_backend`]:
//!
//! 1. the `FABRIC_STATE_BACKEND` environment variable
//!    (`sharded` | `legacy`) decides — this is how the CI matrix and
//!    the benchmark's A/B runs drive both backends;
//! 2. otherwise the `legacy-state-default` cargo feature makes the
//!    legacy store the fallback for builds that want the oracle
//!    without touching the environment;
//! 3. otherwise sharded.
//!
//! Both backends answer the *same* API with the same semantics for
//! every sequential interleaving of `apply`/`get`/`range`/`snapshot` —
//! asserted by the proptest differential harness in
//! `tests/tests/statedb_equivalence.rs` (bit-identical state hashes,
//! MVCC flags, and range-scan results on randomized batches). They
//! differ under concurrency: the sharded store's [`StateDb::pin`]
//! snapshot reads proceed while the committer applies batches, where
//! the legacy store materializes the snapshot up front.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

mod bounded;
mod legacy;
mod sharded;

pub use bounded::{BoundedDbError, BoundedStateDb, HW_DB_DEFAULT_CAPACITY};
pub use legacy::{LegacySnapshotChunks, LegacyStateDb, SNAPSHOT_CHUNK};
pub use sharded::{ShardedSnapshot, ShardedSnapshotChunks, ShardedStateDb, DEFAULT_SHARDS};

/// A `(block, tx)` height: the version tag Fabric stores with each value
/// ("its version created from block number and transaction sequence
/// number", paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Height {
    /// Committing block number.
    pub block_num: u64,
    /// Transaction index within the block.
    pub tx_num: u64,
}

impl Height {
    /// Creates a height.
    pub fn new(block_num: u64, tx_num: u64) -> Self {
        Height { block_num, tx_num }
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block_num, self.tx_num)
    }
}

/// A stored value with its version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The application value.
    pub value: Vec<u8>,
    /// Height of the transaction that wrote it.
    pub version: Height,
}

/// A batch of writes applied atomically at commit.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    entries: Vec<(String, Option<Vec<u8>>)>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queues a put.
    pub fn put(&mut self, key: impl Into<String>, value: Vec<u8>) -> &mut Self {
        self.entries.push((key.into(), Some(value)));
        self
    }

    /// Queues a delete.
    pub fn delete(&mut self, key: impl Into<String>) -> &mut Self {
        self.entries.push((key.into(), None));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value-or-delete)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Option<&[u8]>)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_deref()))
    }
}

impl FromIterator<(String, Option<Vec<u8>>)> for WriteBatch {
    fn from_iter<I: IntoIterator<Item = (String, Option<Vec<u8>>)>>(iter: I) -> Self {
        WriteBatch {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Option<Vec<u8>>)> for WriteBatch {
    fn extend<I: IntoIterator<Item = (String, Option<Vec<u8>>)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// A write-ahead journal attached to a [`StateDb`].
///
/// When a sink is attached (see [`StateDb::attach_journal`]), every
/// [`StateDb::apply`] forwards the batch and height to the sink *before*
/// mutating the in-memory map — the write-ahead ordering a durable
/// backend (`fabric-store`'s state journal) needs so that any state a
/// reader can observe is also recoverable from the journal. Empty
/// batches are journaled too: recovery counts one record per valid
/// transaction, including transactions with empty write sets.
///
/// **Record order is apply order** on both backends. The legacy store
/// records under the same write lock that orders the in-memory apply;
/// the sharded store records under its commit-order mutex, which is
/// held across the whole (possibly shard-parallel) apply — so even when
/// a block's batches fan out over shards concurrently, the journal sees
/// them in exact commit order and a replay reproduces the state
/// byte-for-byte (`journal_order_is_apply_order_under_parallel_commit`
/// in the equivalence harness).
///
/// Sinks must be infallible from the caller's perspective; a durable
/// implementation that cannot write its journal should panic rather
/// than let commits proceed unlogged.
pub trait JournalSink: Send + Sync + std::fmt::Debug {
    /// Records one batch at its commit height, before it becomes
    /// visible in memory.
    fn record(&self, batch: &WriteBatch, height: Height);
    /// Forces buffered journal bytes down to the backing medium (the
    /// group-commit boundary).
    fn flush(&self);
}

/// Statistics counters for a state database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateDbStats {
    /// Total point reads served.
    pub reads: u64,
    /// Total writes applied.
    pub writes: u64,
    /// Reads that found no value.
    pub misses: u64,
}

/// Which state-database implementation a [`StateDb`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateBackend {
    /// Hash-sharded MVCC store (per-shard version chains, pinned
    /// snapshot reads, wide block commit).
    Sharded,
    /// The original single-map store, kept as the differential oracle.
    Legacy,
}

impl StateBackend {
    /// Stable lowercase name, as used by `FABRIC_STATE_BACKEND` and the
    /// benchmark JSON.
    pub fn name(&self) -> &'static str {
        match self {
            StateBackend::Sharded => "sharded",
            StateBackend::Legacy => "legacy",
        }
    }
}

impl fmt::Display for StateBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Resolves the backend [`StateDb::new`] should use (see the module
/// docs for precedence). An explicit `FABRIC_STATE_BACKEND` always
/// wins; the `legacy-state-default` feature only changes the fallback
/// when the env var is unset.
///
/// # Panics
///
/// Panics when `FABRIC_STATE_BACKEND` is set to an unknown value —
/// silently falling back would make an A/B run measure the wrong thing.
pub fn default_state_backend() -> StateBackend {
    match std::env::var("FABRIC_STATE_BACKEND") {
        Ok(v) if v.eq_ignore_ascii_case("sharded") => StateBackend::Sharded,
        Ok(v) if v.eq_ignore_ascii_case("legacy") => StateBackend::Legacy,
        Ok(other) => {
            panic!("FABRIC_STATE_BACKEND must be \"sharded\" or \"legacy\", got {other:?}")
        }
        Err(_) if cfg!(feature = "legacy-state-default") => StateBackend::Legacy,
        Err(_) => StateBackend::Sharded,
    }
}

/// The unbounded, thread-safe versioned store used by software peers —
/// a facade dispatching to the configured [`StateBackend`].
///
/// Cloning is cheap: clones share the same underlying maps, matching
/// how a peer's components all see one state database.
///
/// ```
/// use fabric_statedb::{Height, StateDb, WriteBatch};
/// let db = StateDb::new();
/// let mut batch = WriteBatch::new();
/// batch.put("k", b"v".to_vec());
/// db.apply(&batch, Height::new(1, 0));
/// assert_eq!(db.get("k").unwrap().value, b"v");
/// ```
#[derive(Debug, Clone)]
pub struct StateDb {
    inner: Backend,
}

#[derive(Debug, Clone)]
enum Backend {
    Legacy(LegacyStateDb),
    Sharded(ShardedStateDb),
}

impl Default for StateDb {
    fn default() -> Self {
        StateDb::new()
    }
}

impl StateDb {
    /// Creates an empty database on the process-default backend (see
    /// [`default_state_backend`]).
    pub fn new() -> Self {
        StateDb::with_backend(default_state_backend())
    }

    /// Creates an empty database on an explicit backend — how the
    /// differential harness constructs its oracle/subject pair without
    /// touching the environment.
    pub fn with_backend(backend: StateBackend) -> Self {
        let inner = match backend {
            StateBackend::Legacy => Backend::Legacy(LegacyStateDb::new()),
            StateBackend::Sharded => Backend::Sharded(ShardedStateDb::new()),
        };
        StateDb { inner }
    }

    /// Creates an empty *sharded* database with an explicit shard count
    /// (shard-count independence is itself a tested property; the
    /// default is [`DEFAULT_SHARDS`]).
    pub fn sharded_with_shards(shards: usize) -> Self {
        StateDb {
            inner: Backend::Sharded(ShardedStateDb::with_shards(shards)),
        }
    }

    /// Wraps an existing legacy store in the facade.
    pub fn from_legacy(db: LegacyStateDb) -> Self {
        StateDb {
            inner: Backend::Legacy(db),
        }
    }

    /// Wraps an existing sharded store in the facade.
    pub fn from_sharded(db: ShardedStateDb) -> Self {
        StateDb {
            inner: Backend::Sharded(db),
        }
    }

    /// Rebuilds a database from a checkpoint snapshot on the
    /// process-default backend: the entries of a previous
    /// [`StateDb::snapshot`] plus the tip height recorded with it. The
    /// journal replay that follows a snapshot restore continues from
    /// this tip. Snapshot entries are an ordered, backend-independent
    /// dump, so a checkpoint written by one backend restores into the
    /// other (the recovery cross-check relies on this).
    pub fn from_snapshot(entries: Vec<(String, VersionedValue)>, tip: Option<Height>) -> Self {
        Self::from_snapshot_with_backend(default_state_backend(), entries, tip)
    }

    /// [`StateDb::from_snapshot`] on an explicit backend.
    pub fn from_snapshot_with_backend(
        backend: StateBackend,
        entries: Vec<(String, VersionedValue)>,
        tip: Option<Height>,
    ) -> Self {
        let inner = match backend {
            StateBackend::Legacy => Backend::Legacy(LegacyStateDb::from_snapshot(entries, tip)),
            StateBackend::Sharded => Backend::Sharded(ShardedStateDb::from_snapshot(entries, tip)),
        };
        StateDb { inner }
    }

    /// The backend this database dispatches to.
    pub fn backend(&self) -> StateBackend {
        match &self.inner {
            Backend::Legacy(_) => StateBackend::Legacy,
            Backend::Sharded(_) => StateBackend::Sharded,
        }
    }

    /// Attaches a write-ahead journal sink. Every subsequent
    /// [`StateDb::apply`] records to the sink before touching the map.
    /// Attach *after* recovery replay so replayed batches are not
    /// re-journaled.
    pub fn attach_journal(&self, sink: Arc<dyn JournalSink>) {
        match &self.inner {
            Backend::Legacy(db) => db.attach_journal(sink),
            Backend::Sharded(db) => db.attach_journal(sink),
        }
    }

    /// Flushes the attached journal (a no-op without one): the durable
    /// group-commit boundary.
    pub fn flush_journal(&self) {
        match &self.inner {
            Backend::Legacy(db) => db.flush_journal(),
            Backend::Sharded(db) => db.flush_journal(),
        }
    }

    /// Point read of the current value and version.
    pub fn get(&self, key: &str) -> Option<VersionedValue> {
        match &self.inner {
            Backend::Legacy(db) => db.get(key),
            Backend::Sharded(db) => db.get(key),
        }
    }

    /// Reads just the version (the MVCC hot path).
    pub fn get_version(&self, key: &str) -> Option<Height> {
        self.get(key).map(|v| v.version)
    }

    /// Applies a write batch, stamping every entry at `height`. With a
    /// journal attached the batch is recorded first (write-ahead),
    /// under the lock that orders commits — so the journal's record
    /// order is exactly the apply order. Sinks must not call back into
    /// this database.
    pub fn apply(&self, batch: &WriteBatch, height: Height) {
        match &self.inner {
            Backend::Legacy(db) => db.apply(batch, height),
            Backend::Sharded(db) => db.apply(batch, height),
        }
    }

    /// Applies one block's worth of per-transaction batches in commit
    /// order — the streaming validator's commit stage calls this once
    /// per block. Journal records are emitted for *every* batch
    /// (including empty ones: recovery counts one record per valid
    /// transaction) in exact batch order; on the sharded backend the
    /// in-memory apply then fans out over disjoint shards concurrently,
    /// which is the "commit stage goes wide" half of the MVCC rework.
    /// Equivalent to `for (b, h) in batches { self.apply(b, h) }` on
    /// any backend.
    pub fn apply_block(&self, batches: &[(WriteBatch, Height)]) {
        match &self.inner {
            Backend::Legacy(db) => {
                for (batch, height) in batches {
                    db.apply(batch, *height);
                }
            }
            Backend::Sharded(db) => db.apply_block(batches),
        }
    }

    /// Re-applies a journaled batch during recovery: identical to
    /// [`StateDb::apply`] except the batch is *never* forwarded to an
    /// attached journal (replaying must not re-journal).
    pub fn replay(&self, batch: &WriteBatch, height: Height) {
        match &self.inner {
            Backend::Legacy(db) => db.replay(batch, height),
            Backend::Sharded(db) => db.replay(batch, height),
        }
    }

    /// Range scan over `[start, end)`, in key order. On the sharded
    /// backend this is a k-way merge across the per-shard ordered maps.
    pub fn range(&self, start: &str, end: &str) -> Vec<(String, VersionedValue)> {
        match &self.inner {
            Backend::Legacy(db) => db.range(start, end),
            Backend::Sharded(db) => db.range(start, end),
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        match &self.inner {
            Backend::Legacy(db) => db.len(),
            Backend::Sharded(db) => db.len(),
        }
    }

    /// Whether the store has no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> StateDbStats {
        match &self.inner {
            Backend::Legacy(db) => db.stats(),
            Backend::Sharded(db) => db.stats(),
        }
    }

    /// Highest height ever passed to [`StateDb::apply`], or `None` for a
    /// database that has never committed. Commit heights in Fabric are
    /// monotone, so this is "the visibility horizon": a reader at this
    /// height sees every committed write.
    pub fn tip_height(&self) -> Option<Height> {
        match &self.inner {
            Backend::Legacy(db) => db.tip_height(),
            Backend::Sharded(db) => db.tip_height(),
        }
    }

    /// Full ordered dump of the live keys with values and versions — the
    /// serial-equivalence harness compares final database contents with
    /// this (a `range` over the whole keyspace would need a sentinel
    /// upper bound). Assembled from bounded chunks (see
    /// [`StateDb::snapshot_chunks`]), so a checkpoint of a large store
    /// does not stall concurrent writers for the whole copy.
    pub fn snapshot(&self) -> Vec<(String, VersionedValue)> {
        self.snapshot_chunks(SNAPSHOT_CHUNK).flatten().collect()
    }

    /// Chunked snapshot iterator: each `next()` takes the relevant
    /// locks, clones up to `chunk` entries starting after the previous
    /// chunk's last key, and releases them — writers interleave freely
    /// between chunks. Keys are yielded in ascending order; a key
    /// inserted *behind* the cursor mid-scan is not revisited. On the
    /// sharded backend each chunk k-way merges the per-shard tails.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn snapshot_chunks(&self, chunk: usize) -> SnapshotChunks {
        match &self.inner {
            Backend::Legacy(db) => SnapshotChunks::Legacy(db.snapshot_chunks(chunk)),
            Backend::Sharded(db) => SnapshotChunks::Sharded(db.snapshot_chunks(chunk)),
        }
    }

    /// Deterministic 64-bit digest (FNV-1a) of the full ordered dump —
    /// keys, values, and versions. Backend-independent by construction,
    /// which is what the differential harness and the recovery
    /// cross-check assert: equal state hashes ⇔ bit-identical stores.
    pub fn state_hash(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        for chunk in self.snapshot_chunks(SNAPSHOT_CHUNK) {
            for (key, v) in &chunk {
                hash = fnv1a(hash, &(key.len() as u64).to_le_bytes());
                hash = fnv1a(hash, key.as_bytes());
                hash = fnv1a(hash, &(v.value.len() as u64).to_le_bytes());
                hash = fnv1a(hash, &v.value);
                hash = fnv1a(hash, &v.version.block_num.to_le_bytes());
                hash = fnv1a(hash, &v.version.tx_num.to_le_bytes());
            }
        }
        hash
    }

    /// Pins a read snapshot at the current *committed* height: every
    /// read through the returned handle observes exactly the state as
    /// of that height, whatever the committer applies afterwards.
    ///
    /// On the sharded backend this is the MVCC fast path — the pin
    /// registers in O(1), readers resolve against per-key version
    /// chains, and version pruning is fenced below the oldest live pin.
    /// On the legacy backend the snapshot is materialized up front
    /// (O(n)) — which makes it the *ground truth* the differential
    /// harness holds sharded pinned reads to.
    pub fn pin(&self) -> StateSnapshot {
        match &self.inner {
            Backend::Legacy(db) => {
                let (height, map) = db.pin_materialized();
                StateSnapshot {
                    inner: SnapInner::Legacy { height, map },
                }
            }
            Backend::Sharded(db) => StateSnapshot {
                inner: SnapInner::Sharded(db.pin()),
            },
        }
    }

    /// MVCC validation of a read set: every `(key, expected)` pair must
    /// match the current version exactly ("the read set of each
    /// transaction is computed again by accessing the state database, and
    /// is compared to the read set from the endorsement phase",
    /// paper §2.1.2).
    pub fn mvcc_validate(&self, reads: &[(String, Option<Height>)]) -> bool {
        reads
            .iter()
            .all(|(key, expected)| self.get_version(key) == *expected)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Iterator over bounded snapshot chunks of a [`StateDb`]; see
/// [`StateDb::snapshot_chunks`].
#[derive(Debug)]
pub enum SnapshotChunks {
    /// Chunks off the legacy single map.
    Legacy(LegacySnapshotChunks),
    /// Chunks k-way merged across shards.
    Sharded(ShardedSnapshotChunks),
}

impl Iterator for SnapshotChunks {
    type Item = Vec<(String, VersionedValue)>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SnapshotChunks::Legacy(it) => it.next(),
            SnapshotChunks::Sharded(it) => it.next(),
        }
    }
}

/// A height-pinned read view of a [`StateDb`]; see [`StateDb::pin`].
///
/// Reads never observe a torn batch: the pinned height is the commit
/// high-water mark at pin time, and every write at or below it was
/// fully applied before that mark advanced. Reads through this handle
/// do not touch the statistics counters.
#[derive(Debug)]
pub struct StateSnapshot {
    inner: SnapInner,
}

#[derive(Debug)]
enum SnapInner {
    Legacy {
        height: Option<Height>,
        /// Ordered materialized dump (the oracle side).
        map: Vec<(String, VersionedValue)>,
    },
    Sharded(ShardedSnapshot),
}

impl StateSnapshot {
    /// The height this snapshot is pinned at (`None` = pre-genesis:
    /// every read sees an empty store).
    pub fn height(&self) -> Option<Height> {
        match &self.inner {
            SnapInner::Legacy { height, .. } => *height,
            SnapInner::Sharded(s) => s.height(),
        }
    }

    /// Point read as of the pinned height.
    pub fn get(&self, key: &str) -> Option<VersionedValue> {
        match &self.inner {
            SnapInner::Legacy { map, .. } => map
                .binary_search_by(|(k, _)| k.as_str().cmp(key))
                .ok()
                .map(|i| map[i].1.clone()),
            SnapInner::Sharded(s) => s.get(key),
        }
    }

    /// Version-only read as of the pinned height.
    pub fn get_version(&self, key: &str) -> Option<Height> {
        self.get(key).map(|v| v.version)
    }

    /// Range scan over `[start, end)` as of the pinned height.
    pub fn range(&self, start: &str, end: &str) -> Vec<(String, VersionedValue)> {
        match &self.inner {
            SnapInner::Legacy { map, .. } => map
                .iter()
                .filter(|(k, _)| k.as_str() >= start && k.as_str() < end)
                .cloned()
                .collect(),
            SnapInner::Sharded(s) => s.range(start, end),
        }
    }

    /// Full ordered dump as of the pinned height.
    pub fn snapshot(&self) -> Vec<(String, VersionedValue)> {
        match &self.inner {
            SnapInner::Legacy { map, .. } => map.clone(),
            SnapInner::Sharded(s) => s.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [StateDb; 2] {
        [
            StateDb::with_backend(StateBackend::Legacy),
            StateDb::with_backend(StateBackend::Sharded),
        ]
    }

    #[test]
    fn put_get_roundtrip_on_both_backends() {
        for db in both() {
            let mut b = WriteBatch::new();
            b.put("a", b"1".to_vec());
            db.apply(&b, Height::new(1, 0));
            assert_eq!(db.get("a").unwrap().value, b"1", "{}", db.backend());
            assert_eq!(db.get_version("a"), Some(Height::new(1, 0)));
            assert_eq!(db.get("missing"), None);
        }
    }

    #[test]
    fn delete_removes_key_on_both_backends() {
        for db in both() {
            let mut b = WriteBatch::new();
            b.put("a", b"1".to_vec());
            db.apply(&b, Height::new(1, 0));
            let mut d = WriteBatch::new();
            d.delete("a");
            db.apply(&d, Height::new(2, 0));
            assert_eq!(db.get("a"), None, "{}", db.backend());
            assert_eq!(db.len(), 0);
        }
    }

    #[test]
    fn mvcc_validation_semantics_on_both_backends() {
        for db in both() {
            let mut b = WriteBatch::new();
            b.put("a", b"1".to_vec());
            db.apply(&b, Height::new(1, 0));
            assert!(db.mvcc_validate(&[("a".into(), Some(Height::new(1, 0)))]));
            assert!(!db.mvcc_validate(&[("a".into(), Some(Height::new(0, 0)))]));
            assert!(db.mvcc_validate(&[("nope".into(), None)]));
            assert!(!db.mvcc_validate(&[("a".into(), None)]));
        }
    }

    #[test]
    fn state_hash_is_backend_independent() {
        let [legacy, sharded] = both();
        for db in [&legacy, &sharded] {
            let mut b = WriteBatch::new();
            for i in 0..64 {
                b.put(format!("key{i:03}"), vec![i as u8; 3]);
            }
            db.apply(&b, Height::new(1, 0));
            let mut d = WriteBatch::new();
            d.delete("key007");
            d.put("key100", vec![9]);
            db.apply(&d, Height::new(2, 1));
        }
        assert_eq!(legacy.snapshot(), sharded.snapshot());
        assert_eq!(legacy.state_hash(), sharded.state_hash());
        assert_ne!(legacy.state_hash(), StateDb::new().state_hash());
    }

    #[test]
    fn apply_block_equals_sequential_applies() {
        for backend in [StateBackend::Legacy, StateBackend::Sharded] {
            let serial = StateDb::with_backend(backend);
            let blockwise = StateDb::with_backend(backend);
            let mut batches = Vec::new();
            for tx in 0..8u64 {
                let mut b = WriteBatch::new();
                b.put(format!("k{}", tx % 3), vec![tx as u8]);
                if tx % 2 == 0 {
                    b.delete("k0");
                }
                batches.push((b, Height::new(5, tx)));
            }
            // One empty batch (a valid tx with an empty write set).
            batches.push((WriteBatch::new(), Height::new(5, 8)));
            for (b, h) in &batches {
                serial.apply(b, *h);
            }
            blockwise.apply_block(&batches);
            assert_eq!(serial.snapshot(), blockwise.snapshot(), "{backend}");
            assert_eq!(serial.tip_height(), blockwise.tip_height());
        }
    }

    #[test]
    fn pinned_snapshot_is_stable_across_later_commits() {
        for db in both() {
            let mut b = WriteBatch::new();
            b.put("a", vec![1]);
            b.put("b", vec![2]);
            db.apply(&b, Height::new(1, 0));
            let pin = db.pin();
            assert_eq!(pin.height(), Some(Height::new(1, 0)));
            let mut later = WriteBatch::new();
            later.put("a", vec![9]);
            later.delete("b");
            later.put("c", vec![3]);
            db.apply(&later, Height::new(2, 0));
            // The live view moved...
            assert_eq!(db.get("a").unwrap().value, vec![9]);
            assert_eq!(db.get("b"), None);
            // ...the pinned view did not.
            assert_eq!(pin.get("a").unwrap().value, vec![1], "{}", db.backend());
            assert_eq!(pin.get("b").unwrap().value, vec![2]);
            assert_eq!(pin.get("c"), None);
            let keys: Vec<String> = pin.range("", "zzz").into_iter().map(|(k, _)| k).collect();
            assert_eq!(keys, vec!["a", "b"]);
        }
    }

    #[test]
    fn pin_of_empty_store_sees_nothing_ever() {
        for db in both() {
            let pin = db.pin();
            assert_eq!(pin.height(), None);
            let mut b = WriteBatch::new();
            b.put("a", vec![1]);
            db.apply(&b, Height::new(0, 0));
            assert_eq!(pin.get("a"), None, "{}", db.backend());
            assert!(pin.snapshot().is_empty());
        }
    }

    #[test]
    fn from_snapshot_round_trips_across_backends() {
        let src = StateDb::with_backend(StateBackend::Sharded);
        let mut b = WriteBatch::new();
        for i in 0..300 {
            b.put(format!("k{i:04}"), vec![(i % 251) as u8]);
        }
        src.apply(&b, Height::new(4, 1));
        let entries = src.snapshot();
        let tip = src.tip_height();
        for backend in [StateBackend::Legacy, StateBackend::Sharded] {
            let restored = StateDb::from_snapshot_with_backend(backend, entries.clone(), tip);
            assert_eq!(restored.snapshot(), entries, "{backend}");
            assert_eq!(restored.tip_height(), tip);
            assert_eq!(restored.state_hash(), src.state_hash());
            assert_eq!(restored.len(), 300);
        }
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(StateBackend::Sharded.name(), "sharded");
        assert_eq!(StateBackend::Legacy.name(), "legacy");
        assert_eq!(StateBackend::Sharded.to_string(), "sharded");
    }

    #[test]
    fn write_batch_from_iterator() {
        let batch: WriteBatch = vec![("a".to_string(), Some(vec![1])), ("b".to_string(), None)]
            .into_iter()
            .collect();
        assert_eq!(batch.len(), 2);
    }
}
