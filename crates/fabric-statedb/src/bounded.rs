//! Capacity-limited store modeling the Blockchain Machine's in-hardware
//! database (BRAM/URAM, 8192 entries in the paper's configuration).

use std::collections::BTreeMap;
use std::fmt;

use crate::{Height, StateDbStats, VersionedValue};

/// Outcome of a bounded-store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedDbError {
    /// The store is at capacity and the key was not already present.
    Full {
        /// Configured entry capacity.
        capacity: usize,
    },
    /// The key is currently locked by a writer.
    Locked,
}

impl fmt::Display for BoundedDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundedDbError::Full { capacity } => {
                write!(f, "in-hardware state database full ({capacity} entries)")
            }
            BoundedDbError::Locked => write!(f, "key is locked by an in-flight write"),
        }
    }
}

impl std::error::Error for BoundedDbError {}

/// Capacity-limited store modeling the Blockchain Machine's in-hardware
/// database (BRAM/URAM, 8192 entries in the paper's configuration).
///
/// Writes take a per-key lock for the duration of
/// [`BoundedStateDb::begin_write`] .. [`BoundedStateDb::finish_write`];
/// reads of a locked key fail with [`BoundedDbError::Locked`],
/// reproducing the hardware's "internal locking mechanism to disallow
/// reading of a key if it is currently being written" (paper §3.3).
#[derive(Debug)]
pub struct BoundedStateDb {
    map: BTreeMap<String, VersionedValue>,
    locked: std::collections::HashSet<String>,
    capacity: usize,
    stats: StateDbStats,
}

/// The paper's configured in-hardware database capacity (§4.1).
pub const HW_DB_DEFAULT_CAPACITY: usize = 8192;

impl BoundedStateDb {
    /// Creates a store holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        BoundedStateDb {
            map: BTreeMap::new(),
            locked: std::collections::HashSet::new(),
            capacity,
            stats: StateDbStats::default(),
        }
    }

    /// Point read; fails when the key is write-locked.
    ///
    /// # Errors
    ///
    /// [`BoundedDbError::Locked`] if a write is in flight on `key`.
    pub fn get(&mut self, key: &str) -> Result<Option<VersionedValue>, BoundedDbError> {
        if self.locked.contains(key) {
            return Err(BoundedDbError::Locked);
        }
        self.stats.reads += 1;
        let hit = self.map.get(key).cloned();
        if hit.is_none() {
            self.stats.misses += 1;
        }
        Ok(hit)
    }

    /// Reads just the version.
    ///
    /// # Errors
    ///
    /// [`BoundedDbError::Locked`] if a write is in flight on `key`.
    pub fn get_version(&mut self, key: &str) -> Result<Option<Height>, BoundedDbError> {
        Ok(self.get(key)?.map(|v| v.version))
    }

    /// Acquires the write lock on `key` (the hardware write port claiming
    /// the address).
    ///
    /// # Errors
    ///
    /// [`BoundedDbError::Locked`] when already locked, or
    /// [`BoundedDbError::Full`] when the key is new and capacity is
    /// exhausted.
    pub fn begin_write(&mut self, key: &str) -> Result<(), BoundedDbError> {
        if self.locked.contains(key) {
            return Err(BoundedDbError::Locked);
        }
        if !self.map.contains_key(key) && self.map.len() + self.locked.len() >= self.capacity {
            return Err(BoundedDbError::Full {
                capacity: self.capacity,
            });
        }
        self.locked.insert(key.to_string());
        Ok(())
    }

    /// Completes a write started with [`BoundedStateDb::begin_write`].
    ///
    /// # Panics
    ///
    /// Panics if the key was not locked — that is a protocol bug in the
    /// caller, not a runtime condition.
    pub fn finish_write(&mut self, key: &str, value: Vec<u8>, version: Height) {
        assert!(
            self.locked.remove(key),
            "finish_write without begin_write: {key}"
        );
        self.stats.writes += 1;
        self.map
            .insert(key.to_string(), VersionedValue { value, version });
    }

    /// Convenience: locked write in one call.
    ///
    /// # Errors
    ///
    /// Same as [`BoundedStateDb::begin_write`].
    pub fn put(
        &mut self,
        key: &str,
        value: Vec<u8>,
        version: Height,
    ) -> Result<(), BoundedDbError> {
        self.begin_write(key)?;
        self.finish_write(key, value, version);
        Ok(())
    }

    /// Number of committed entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> StateDbStats {
        self.stats
    }
}

impl Default for BoundedStateDb {
    fn default() -> Self {
        BoundedStateDb::new(HW_DB_DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_capacity_enforced() {
        let mut db = BoundedStateDb::new(2);
        db.put("a", vec![1], Height::new(1, 0)).unwrap();
        db.put("b", vec![2], Height::new(1, 1)).unwrap();
        assert_eq!(
            db.put("c", vec![3], Height::new(1, 2)),
            Err(BoundedDbError::Full { capacity: 2 })
        );
        // overwriting an existing key is fine at capacity
        db.put("a", vec![9], Height::new(2, 0)).unwrap();
        assert_eq!(db.get("a").unwrap().unwrap().value, vec![9]);
    }

    #[test]
    fn bounded_lock_blocks_reads() {
        let mut db = BoundedStateDb::new(8);
        db.put("k", vec![1], Height::new(1, 0)).unwrap();
        db.begin_write("k").unwrap();
        assert_eq!(db.get("k"), Err(BoundedDbError::Locked));
        assert_eq!(db.begin_write("k"), Err(BoundedDbError::Locked));
        db.finish_write("k", vec![2], Height::new(2, 0));
        assert_eq!(db.get("k").unwrap().unwrap().value, vec![2]);
    }

    #[test]
    #[should_panic(expected = "finish_write without begin_write")]
    fn bounded_finish_without_begin_panics() {
        let mut db = BoundedStateDb::new(8);
        db.finish_write("k", vec![1], Height::new(1, 0));
    }

    #[test]
    fn bounded_locked_slots_count_toward_capacity() {
        let mut db = BoundedStateDb::new(1);
        db.begin_write("a").unwrap();
        assert_eq!(
            db.begin_write("b"),
            Err(BoundedDbError::Full { capacity: 1 })
        );
        db.finish_write("a", vec![1], Height::new(1, 0));
    }

    #[test]
    fn default_capacity_matches_paper() {
        let db = BoundedStateDb::default();
        assert_eq!(db.capacity(), 8192);
    }
}
