//! The original single-map state store, kept compiled as the
//! **differential oracle** for the sharded MVCC backend.
//!
//! One `BTreeMap` behind one `RwLock`: trivially correct for every
//! sequential interleaving, which is exactly what an oracle should be.
//! The equivalence harness (`tests/tests/statedb_equivalence.rs`) holds
//! [`crate::ShardedStateDb`] to bit-identical results against this
//! store; select it at runtime with `FABRIC_STATE_BACKEND=legacy` or at
//! build time with the `legacy-state-default` feature (see
//! [`crate::default_state_backend`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::{Height, JournalSink, StateDbStats, VersionedValue, WriteBatch};

/// Entries cloned per lock acquisition by snapshotting: large enough to
/// amortize the lock round-trip, small enough that a writer blocked
/// behind a chunk waits microseconds, not the whole copy.
pub const SNAPSHOT_CHUNK: usize = 1024;

/// The original unbounded, thread-safe versioned store: a single ordered
/// map behind one reader-writer lock. See the module docs for why it is
/// kept.
///
/// Cloning is cheap: clones share the same underlying map.
#[derive(Debug, Clone)]
pub struct LegacyStateDb {
    inner: Arc<RwLock<Inner>>,
}

impl Default for LegacyStateDb {
    fn default() -> Self {
        LegacyStateDb {
            inner: Arc::new(RwLock::named("statedb.legacy", Inner::default())),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: BTreeMap<String, VersionedValue>,
    stats: StateDbStats,
    /// High-water mark of heights passed to [`LegacyStateDb::apply`]. The
    /// validator's commit stage debug-asserts against it that block
    /// writes land in strictly increasing block order (the invariant the
    /// streaming commit sequencer exists to preserve).
    tip: Option<Height>,
    /// Optional write-ahead journal; [`LegacyStateDb::apply`] forwards
    /// every batch here before mutating the map.
    journal: Option<Arc<dyn JournalSink>>,
}

impl LegacyStateDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        LegacyStateDb::default()
    }

    /// Rebuilds a database from a checkpoint snapshot: the entries of a
    /// previous [`LegacyStateDb::snapshot`] plus the tip height recorded
    /// with it. The journal replay that follows a snapshot restore
    /// continues from this tip.
    pub fn from_snapshot(entries: Vec<(String, VersionedValue)>, tip: Option<Height>) -> Self {
        LegacyStateDb {
            inner: Arc::new(RwLock::named(
                "statedb.legacy",
                Inner {
                    map: entries.into_iter().collect(),
                    stats: StateDbStats::default(),
                    tip,
                    journal: None,
                },
            )),
        }
    }

    /// Attaches a write-ahead journal sink. Every subsequent
    /// [`LegacyStateDb::apply`] records to the sink before touching the
    /// map. Attach *after* recovery replay so replayed batches are not
    /// re-journaled.
    pub fn attach_journal(&self, sink: Arc<dyn JournalSink>) {
        self.inner.write().journal = Some(sink);
    }

    /// Flushes the attached journal (a no-op without one): the durable
    /// group-commit boundary.
    pub fn flush_journal(&self) {
        let sink = self.inner.read().journal.clone();
        if let Some(sink) = sink {
            sink.flush();
        }
    }

    /// Point read of the current value and version.
    pub fn get(&self, key: &str) -> Option<VersionedValue> {
        let mut g = self.inner.write();
        g.stats.reads += 1;
        let hit = g.map.get(key).cloned();
        if hit.is_none() {
            g.stats.misses += 1;
        }
        hit
    }

    /// Reads just the version (the MVCC hot path).
    pub fn get_version(&self, key: &str) -> Option<Height> {
        self.get(key).map(|v| v.version)
    }

    /// Applies a write batch, stamping every entry at `height`. With a
    /// journal attached the batch is recorded first (write-ahead), under
    /// the same write lock that orders the in-memory apply — so the
    /// journal's record order is exactly the apply order. The sink write
    /// deliberately happens *inside* the lock: releasing between record
    /// and apply would let a concurrent `apply` journal ahead of an
    /// earlier in-memory mutation and break replay determinism (the
    /// sharded backend preserves the same invariant with a dedicated
    /// commit-order mutex; see [`crate::JournalSink`]). Sinks must not
    /// call back into this database.
    pub fn apply(&self, batch: &WriteBatch, height: Height) {
        let mut g = self.inner.write();
        if let Some(journal) = &g.journal {
            // check-sync: same journal-order invariant as the sharded
            // backend — record must happen under the lock that orders
            // the in-memory apply.
            #[cfg(feature = "check-sync")]
            if fabric_check::enabled() {
                assert!(
                    fabric_check::holding("statedb.legacy"),
                    "legacy journal-order invariant violated: record outside `statedb.legacy`"
                );
            }
            journal.record(batch, height);
        }
        Self::apply_locked(&mut g, batch, height);
    }

    /// Re-applies a journaled batch during recovery: identical to
    /// [`LegacyStateDb::apply`] except the batch is *never* forwarded to
    /// an attached journal (replaying must not re-journal).
    pub fn replay(&self, batch: &WriteBatch, height: Height) {
        let mut g = self.inner.write();
        Self::apply_locked(&mut g, batch, height);
    }

    fn apply_locked(g: &mut Inner, batch: &WriteBatch, height: Height) {
        g.tip = Some(match g.tip {
            Some(tip) => tip.max(height),
            None => height,
        });
        for (key, value) in batch.iter() {
            g.stats.writes += 1;
            match value {
                Some(v) => {
                    g.map.insert(
                        key.to_string(),
                        VersionedValue {
                            value: v.to_vec(),
                            version: height,
                        },
                    );
                }
                None => {
                    g.map.remove(key);
                }
            }
        }
    }

    /// Range scan over `[start, end)`, in key order.
    pub fn range(&self, start: &str, end: &str) -> Vec<(String, VersionedValue)> {
        let g = self.inner.read();
        g.map
            .range(start.to_string()..end.to_string())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// Whether the store has no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> StateDbStats {
        self.inner.read().stats
    }

    /// Highest height ever passed to [`LegacyStateDb::apply`], or `None`
    /// for a database that has never committed.
    pub fn tip_height(&self) -> Option<Height> {
        self.inner.read().tip
    }

    /// Full ordered dump of the live keys with values and versions,
    /// assembled from bounded chunks ([`SNAPSHOT_CHUNK`] entries per
    /// lock acquisition, see [`LegacyStateDb::snapshot_chunks`]), so a
    /// checkpoint of a large store does not stall concurrent
    /// [`LegacyStateDb::apply`] writers for the whole copy. Quiesced (no
    /// concurrent writers) the result is an exact point-in-time image;
    /// under concurrency it is a *fuzzy* snapshot — consistent per
    /// chunk, and callers needing exactness (crash recovery) must replay
    /// a journal tail over it, which is precisely what `fabric-store`
    /// checkpointing does.
    pub fn snapshot(&self) -> Vec<(String, VersionedValue)> {
        self.snapshot_chunks(SNAPSHOT_CHUNK).flatten().collect()
    }

    /// Chunked snapshot iterator: each `next()` acquires the read lock,
    /// clones up to `chunk` entries starting after the previous chunk's
    /// last key, and releases the lock — writers interleave freely
    /// between chunks. Keys are yielded in ascending order; a key
    /// inserted *behind* the cursor mid-scan is not revisited.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn snapshot_chunks(&self, chunk: usize) -> LegacySnapshotChunks {
        assert!(chunk > 0, "snapshot chunk size must be non-zero");
        LegacySnapshotChunks {
            db: self.clone(),
            cursor: None,
            chunk,
            done: false,
        }
    }

    /// Atomically materializes `(tip, full ordered dump)` under ONE
    /// read-lock acquisition — the snapshot-pinning path. Unlike
    /// [`LegacyStateDb::snapshot`] (chunked, fuzzy under concurrency),
    /// this view is exact: a concurrent `apply` lands entirely before
    /// or entirely after it, never across it. O(n) and lock-holding for
    /// the whole copy — which is precisely the cost the sharded
    /// backend's O(1) pins exist to avoid, and why this method is the
    /// oracle for them.
    pub fn pin_materialized(&self) -> (Option<Height>, Vec<(String, VersionedValue)>) {
        let g = self.inner.read();
        (
            g.tip,
            g.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        )
    }

    /// MVCC validation of a read set: every `(key, expected)` pair must
    /// match the current version exactly.
    pub fn mvcc_validate(&self, reads: &[(String, Option<Height>)]) -> bool {
        reads
            .iter()
            .all(|(key, expected)| self.get_version(key) == *expected)
    }
}

/// Iterator over bounded snapshot chunks of a [`LegacyStateDb`]; see
/// [`LegacyStateDb::snapshot_chunks`].
#[derive(Debug)]
pub struct LegacySnapshotChunks {
    db: LegacyStateDb,
    /// Last key yielded by the previous chunk; the next chunk resumes
    /// strictly after it.
    cursor: Option<String>,
    chunk: usize,
    done: bool,
}

impl Iterator for LegacySnapshotChunks {
    type Item = Vec<(String, VersionedValue)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let batch: Vec<(String, VersionedValue)> = {
            let g = self.db.inner.read();
            let range = match &self.cursor {
                Some(last) => g.map.range::<str, _>((
                    std::ops::Bound::Excluded(last.as_str()),
                    std::ops::Bound::Unbounded,
                )),
                None => g.map.range::<str, _>((
                    std::ops::Bound::<&str>::Unbounded,
                    std::ops::Bound::Unbounded,
                )),
            };
            range
                .take(self.chunk)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        if batch.len() < self.chunk {
            self.done = true;
        }
        let last = batch.last()?;
        self.cursor = Some(last.0.clone());
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        assert_eq!(db.get("a").unwrap().value, b"1");
        assert_eq!(db.get_version("a"), Some(Height::new(1, 0)));
        assert_eq!(db.get("missing"), None);
    }

    #[test]
    fn later_write_bumps_version() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        db.apply(&b, Height::new(2, 3));
        assert_eq!(db.get_version("a"), Some(Height::new(2, 3)));
    }

    #[test]
    fn delete_removes_key() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        let mut d = WriteBatch::new();
        d.delete("a");
        db.apply(&d, Height::new(2, 0));
        assert_eq!(db.get("a"), None);
    }

    #[test]
    fn mvcc_validation_semantics() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", b"1".to_vec());
        db.apply(&b, Height::new(1, 0));
        // matching version -> valid
        assert!(db.mvcc_validate(&[("a".into(), Some(Height::new(1, 0)))]));
        // stale version -> conflict
        assert!(!db.mvcc_validate(&[("a".into(), Some(Height::new(0, 0)))]));
        // read of a missing key expected missing -> valid
        assert!(db.mvcc_validate(&[("nope".into(), None)]));
        // key appeared since endorsement -> conflict
        assert!(!db.mvcc_validate(&[("a".into(), None)]));
    }

    #[test]
    fn range_scan_is_ordered() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        for k in ["b", "a", "c", "d"] {
            b.put(k, k.as_bytes().to_vec());
        }
        db.apply(&b, Height::new(1, 0));
        let keys: Vec<String> = db.range("a", "d").into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn stats_track_reads_and_misses() {
        let db = LegacyStateDb::new();
        db.get("x");
        let mut b = WriteBatch::new();
        b.put("x", vec![1]);
        db.apply(&b, Height::new(1, 0));
        db.get("x");
        let s = db.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn clones_share_state() {
        let db = LegacyStateDb::new();
        let db2 = db.clone();
        let mut b = WriteBatch::new();
        b.put("k", vec![7]);
        db.apply(&b, Height::new(1, 0));
        assert_eq!(db2.get("k").unwrap().value, vec![7]);
    }

    type RecordedBatch = (Vec<(String, Option<Vec<u8>>)>, Height);

    #[derive(Debug, Default)]
    struct RecordingSink {
        records: parking_lot::Mutex<Vec<RecordedBatch>>,
        flushes: std::sync::atomic::AtomicUsize,
    }

    impl JournalSink for RecordingSink {
        fn record(&self, batch: &WriteBatch, height: Height) {
            self.records.lock().push((
                batch
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.map(|b| b.to_vec())))
                    .collect(),
                height,
            ));
        }

        fn flush(&self) {
            self.flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn journal_sink_sees_every_apply_including_empty_batches() {
        let db = LegacyStateDb::new();
        let sink = Arc::new(RecordingSink::default());
        db.attach_journal(sink.clone());
        let mut b = WriteBatch::new();
        b.put("a", vec![1]);
        db.apply(&b, Height::new(1, 0));
        // Empty batches must be journaled too: recovery counts one
        // record per valid transaction.
        db.apply(&WriteBatch::new(), Height::new(1, 1));
        let records = sink.records.lock();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].1, Height::new(1, 0));
        assert_eq!(records[1].0.len(), 0);
        drop(records);
        db.flush_journal();
        assert_eq!(sink.flushes.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn replay_does_not_rejournal() {
        let db = LegacyStateDb::new();
        let sink = Arc::new(RecordingSink::default());
        db.attach_journal(sink.clone());
        let mut b = WriteBatch::new();
        b.put("a", vec![1]);
        db.replay(&b, Height::new(3, 0));
        assert!(sink.records.lock().is_empty(), "replay must not journal");
        assert_eq!(db.get("a").unwrap().version, Height::new(3, 0));
        assert_eq!(db.tip_height(), Some(Height::new(3, 0)));
    }

    #[test]
    fn snapshot_restore_roundtrips_values_and_tip() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        b.put("a", vec![1]);
        b.put("b", vec![2]);
        db.apply(&b, Height::new(4, 1));
        let restored = LegacyStateDb::from_snapshot(db.snapshot(), db.tip_height());
        assert_eq!(restored.snapshot(), db.snapshot());
        assert_eq!(restored.tip_height(), Some(Height::new(4, 1)));
    }

    #[test]
    fn snapshot_chunks_release_the_lock_so_applies_interleave() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        for i in 0..10 {
            b.put(format!("k{i:02}"), vec![i]);
        }
        db.apply(&b, Height::new(1, 0));

        // Pull one chunk, then apply ON THE SAME THREAD before pulling
        // the rest: with the old whole-map-under-one-read-lock snapshot
        // this interleaving was impossible (the lock spanned the copy);
        // with chunking the write-lock acquisition inside apply()
        // succeeds between chunks.
        let mut chunks = db.snapshot_chunks(3);
        let first = chunks.next().unwrap();
        assert_eq!(first.len(), 3);

        let mut w = WriteBatch::new();
        w.put("k00", vec![99]); // behind the cursor: not revisited
        w.put("k99", vec![42]); // ahead of the cursor: picked up
        db.apply(&w, Height::new(2, 0));

        let rest: Vec<_> = chunks.flatten().collect();
        let mut all = first;
        all.extend(rest);
        // Ascending, duplicate-free key order across chunk boundaries.
        let keys: Vec<&str> = all.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        // The fuzzy-snapshot contract: the ahead-of-cursor write is
        // visible, the behind-the-cursor one keeps its chunk-time value.
        assert_eq!(all.iter().find(|(k, _)| k == "k99").unwrap().1.value, [42]);
        assert_eq!(all.iter().find(|(k, _)| k == "k00").unwrap().1.value, [0]);
    }

    #[test]
    fn quiescent_chunked_snapshot_is_exact() {
        let db = LegacyStateDb::new();
        let mut b = WriteBatch::new();
        for i in 0..257 {
            b.put(format!("key{i:04}"), vec![(i % 251) as u8]);
        }
        db.apply(&b, Height::new(1, 0));
        // With no concurrent writers, chunked assembly must equal the
        // ordered dump regardless of chunk size (including sizes that
        // do not divide the key count).
        for chunk in [1, 3, 64, 256, 1000] {
            let assembled: Vec<_> = db.snapshot_chunks(chunk).flatten().collect();
            assert_eq!(assembled, db.snapshot(), "chunk={chunk}");
        }
        assert_eq!(db.snapshot().len(), 257);
    }
}
