//! Hash-sharded MVCC state store — the commit-path rework of ROADMAP
//! item 3.
//!
//! # Why
//!
//! The legacy store is one `BTreeMap` behind one `RwLock`: every point
//! read, range scan, snapshot chunk, and batch apply funnels through a
//! single lock, and its `get` even takes the *write* lock to bump
//! statistics. Fine for 25-tx harness blocks; the bottleneck at the
//! million-key populations `workload::arrivals` generates, and a hard
//! blocker for a wide commit stage.
//!
//! # Structure
//!
//! * **Shards.** Keys hash (FNV-1a, [`DEFAULT_SHARDS`] shards by
//!   default) to independent `RwLock<BTreeMap<key, version-chain>>`
//!   shards. Point reads touch exactly one shard lock; a block's write
//!   batches group by shard and disjoint shard groups apply
//!   concurrently ([`ShardedStateDb::apply_block`]).
//! * **Version chains (MVCC).** Each key maps to a short chain of
//!   `(epoch, height, value-or-tombstone)` entries in apply order.
//!   Live reads resolve the newest entry; a pinned snapshot
//!   ([`ShardedStateDb::pin`]) resolves the newest entry at or below
//!   its pinned *epoch* — so readers execute at a height snapshot
//!   without blocking the committer, and the committer never blocks
//!   behind readers. Chains are pruned below the oldest live pin on
//!   every touch, so hot keys stay short.
//! * **Epochs, not heights, order visibility.** Every apply completes
//!   one epoch (a monotone counter); the `(epoch, tip-height)` pair
//!   advances *after* the whole apply — a whole block for
//!   `apply_block` — is in place. Pins capture that pair, which is why
//!   a pinned reader can never observe a torn batch or a half-applied
//!   block, even while shard groups commit in parallel, and why
//!   non-monotone heights (exercised by the equivalence harness) don't
//!   confuse snapshot reads.
//! * **Ordered index.** `range`/`snapshot`/`snapshot_chunks` k-way
//!   merge the per-shard ordered maps (shards partition the keyspace
//!   disjointly, so the merge is a plain heap-less cursor sweep over at
//!   most `shards` tails).
//! * **Journal ordering.** A commit-order mutex is held across journal
//!   record *and* in-memory apply: record order is exactly apply order
//!   even when the in-memory fan-out runs shard-parallel. See
//!   [`crate::JournalSink`].
//!
//! Lock order: `order` → `pins` → shard locks → `committed`. Readers
//! take only shard locks; `pin()` takes `pins` → `committed`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::{Height, JournalSink, StateDbStats, VersionedValue, WriteBatch};

/// Default shard count: enough to spread a wide commit stage's batches
/// with low collision probability at harness thread counts, small
/// enough that the k-way merge cursor sweep stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// Minimum total entries in an [`ShardedStateDb::apply_block`] before
/// the per-shard apply fans out to threads; below this the spawn cost
/// dominates the map work.
const PARALLEL_APPLY_THRESHOLD: usize = 256;

/// `check-sync` runtime assertion for the journal-order invariant:
/// journal records and the epoch/tip publish must happen under the
/// `statedb.order` commit lock, which is what makes record order equal
/// apply order (the property recovery replay depends on). Compiles to
/// nothing without the feature; costs one atomic load when the feature
/// is built but checking is off.
#[cfg(feature = "check-sync")]
#[inline]
fn assert_order_held(stage: &str) {
    if fabric_check::enabled() {
        assert!(
            fabric_check::holding("statedb.order"),
            "statedb journal-order invariant violated: {stage} without holding `statedb.order`"
        );
    }
}

#[cfg(not(feature = "check-sync"))]
#[inline]
fn assert_order_held(_stage: &str) {}

/// One version of one key. Chains are kept in apply order (last =
/// newest); `value: None` is a tombstone.
#[derive(Debug, Clone)]
struct VersionEntry {
    /// The apply epoch that wrote this entry (see module docs).
    epoch: u64,
    /// Commit height stamped on the write.
    height: Height,
    value: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct Shard {
    map: BTreeMap<String, Vec<VersionEntry>>,
    /// Keys whose newest entry is a put (i.e. visible to a live read).
    live: usize,
}

/// State guarded by the commit-order mutex: held across journal record
/// and in-memory apply so record order == apply order.
#[derive(Debug, Default)]
struct OrderState {
    journal: Option<Arc<dyn JournalSink>>,
    /// Epochs completed so far (0 = nothing ever applied).
    epoch: u64,
    /// High-water mark of applied heights.
    tip: Option<Height>,
}

#[derive(Debug)]
struct SharedInner {
    shards: Vec<RwLock<Shard>>,
    order: Mutex<OrderState>,
    /// `(epoch, tip)` of the last *completed* apply — advanced only
    /// after every entry of the apply is in place, so a pin taken from
    /// it can never observe a torn batch.
    committed: RwLock<(u64, Option<Height>)>,
    /// Live pins: epoch → refcount. Version pruning is fenced below the
    /// smallest key.
    pins: Mutex<BTreeMap<u64, usize>>,
    reads: AtomicU64,
    writes: AtomicU64,
    misses: AtomicU64,
}

/// The hash-sharded MVCC store; see the module docs. Constructed
/// through the [`crate::StateDb`] facade in normal use.
///
/// Cloning is cheap: clones share the same shards.
#[derive(Debug, Clone)]
pub struct ShardedStateDb {
    inner: Arc<SharedInner>,
}

impl Default for ShardedStateDb {
    fn default() -> Self {
        ShardedStateDb::new()
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ShardedStateDb {
    /// Creates an empty store with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        ShardedStateDb::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        ShardedStateDb {
            inner: Arc::new(SharedInner {
                shards: (0..shards)
                    .map(|_| RwLock::named("statedb.shard", Shard::default()))
                    .collect(),
                order: Mutex::named("statedb.order", OrderState::default()),
                committed: RwLock::named("statedb.committed", (0, None)),
                pins: Mutex::named("statedb.pins", BTreeMap::new()),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Rebuilds a store from a checkpoint snapshot (see
    /// [`crate::StateDb::from_snapshot`]): entries land in their home
    /// shards as single-entry chains at epoch 1.
    pub fn from_snapshot(entries: Vec<(String, VersionedValue)>, tip: Option<Height>) -> Self {
        let db = ShardedStateDb::new();
        let epoch = if entries.is_empty() && tip.is_none() {
            0
        } else {
            1
        };
        {
            let mut order = db.inner.order.lock();
            for (key, v) in entries {
                let shard = &db.inner.shards[db.shard_of(&key)];
                let mut g = shard.write();
                g.map.insert(
                    key,
                    vec![VersionEntry {
                        epoch,
                        height: v.version,
                        value: Some(v.value),
                    }],
                );
                g.live += 1;
            }
            order.epoch = epoch;
            order.tip = tip;
            *db.inner.committed.write() = (epoch, tip);
        }
        db
    }

    fn shard_of(&self, key: &str) -> usize {
        (fnv1a64(key.as_bytes()) % self.inner.shards.len() as u64) as usize
    }

    /// Attaches a write-ahead journal sink (see
    /// [`crate::StateDb::attach_journal`]).
    pub fn attach_journal(&self, sink: Arc<dyn JournalSink>) {
        self.inner.order.lock().journal = Some(sink);
    }

    /// Flushes the attached journal (a no-op without one).
    pub fn flush_journal(&self) {
        let sink = self.inner.order.lock().journal.clone();
        if let Some(sink) = sink {
            sink.flush();
        }
    }

    /// Point read of the current value and version: one shard read
    /// lock, newest chain entry.
    pub fn get(&self, key: &str) -> Option<VersionedValue> {
        // relaxed: monotonic stats counter; never gates data visibility
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        let shard = self.inner.shards[self.shard_of(key)].read();
        let hit = shard.map.get(key).and_then(|chain| {
            let newest = chain.last()?;
            Some(VersionedValue {
                value: newest.value.clone()?,
                version: newest.height,
            })
        });
        if hit.is_none() {
            // relaxed: monotonic stats counter; never gates data visibility
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Reads just the version (the MVCC hot path).
    pub fn get_version(&self, key: &str) -> Option<Height> {
        self.get(key).map(|v| v.version)
    }

    /// Applies one batch; journals it first when a sink is attached.
    pub fn apply(&self, batch: &WriteBatch, height: Height) {
        self.apply_batches(&[(batch, height)], true);
    }

    /// Re-applies a journaled batch during recovery — never re-journals.
    pub fn replay(&self, batch: &WriteBatch, height: Height) {
        self.apply_batches(&[(batch, height)], false);
    }

    /// Applies a block's per-transaction batches in commit order, with
    /// the in-memory work fanned out over disjoint shards when the
    /// block is large enough to pay for the threads. Journal records
    /// are emitted for every batch, in batch order, before any entry
    /// becomes visible. Semantically identical to applying each batch
    /// in sequence.
    pub fn apply_block(&self, batches: &[(WriteBatch, Height)]) {
        let refs: Vec<(&WriteBatch, Height)> = batches.iter().map(|(b, h)| (b, *h)).collect();
        self.apply_batches(&refs, true);
    }

    fn apply_batches(&self, batches: &[(&WriteBatch, Height)], journal: bool) {
        if batches.is_empty() {
            return;
        }
        let inner = &self.inner;
        // The commit-order mutex is held for the WHOLE apply: journal
        // record order == apply order, and concurrent apply calls
        // serialize exactly like the legacy store. Parallelism lives
        // *inside* one apply (disjoint shard groups), not across them.
        let mut order = inner.order.lock();
        if journal {
            if let Some(sink) = &order.journal {
                for (batch, height) in batches {
                    assert_order_held("journal record emitted");
                    sink.record(batch, *height);
                }
            }
        }
        let epoch_pre = order.epoch;
        // Prune fence: nothing at or below this epoch is dropped except
        // dead history. Any pin taken concurrently lands at an epoch
        // >= epoch_pre (committed never moves backwards), and pruning
        // keeps the newest entry at-or-below the fence — so every live
        // or future pin still resolves.
        let horizon = {
            let pins = inner.pins.lock();
            match pins.keys().next() {
                Some(&oldest) => oldest.min(epoch_pre),
                None => epoch_pre,
            }
        };

        // Group entries by home shard, preserving batch order within
        // each group (same-shard writes from later batches come later,
        // so last-write-wins holds across the whole block).
        let mut groups: Vec<Vec<GroupEntry>> = vec![Vec::new(); inner.shards.len()];
        let mut total = 0usize;
        let mut tip = order.tip;
        for (i, (batch, height)) in batches.iter().enumerate() {
            let epoch = epoch_pre + 1 + i as u64;
            tip = Some(match tip {
                Some(t) => t.max(*height),
                None => *height,
            });
            for (key, value) in batch.iter() {
                groups[self.shard_of(key)].push((key, value, epoch, *height));
                total += 1;
            }
        }
        // relaxed: monotonic stats counter; never gates data visibility
        inner.writes.fetch_add(total as u64, Ordering::Relaxed);

        let busy = groups.iter().filter(|g| !g.is_empty()).count();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(busy);
        if total >= PARALLEL_APPLY_THRESHOLD && workers > 1 {
            // Wide commit: at most `available_parallelism` threads, each
            // applying a stripe of shard groups (thread w takes groups
            // w, w+workers, ...). Each group goes to exactly one thread
            // and groups touch disjoint shards, so the shard write
            // locks never contend; capping at the core count keeps the
            // spawn overhead from swamping the fan-out on small hosts.
            let groups = &groups;
            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || {
                        for idx in (w..groups.len()).step_by(workers) {
                            if !groups[idx].is_empty() {
                                apply_group(&inner.shards[idx], &groups[idx], horizon);
                            }
                        }
                    });
                }
            });
        } else {
            for (idx, group) in groups.iter().enumerate() {
                if !group.is_empty() {
                    apply_group(&inner.shards[idx], group, horizon);
                }
            }
        }

        // Publish: the new epoch/tip become pinnable only now, after
        // every shard group is fully applied.
        assert_order_held("epoch/tip published");
        order.epoch = epoch_pre + batches.len() as u64;
        order.tip = tip;
        *inner.committed.write() = (order.epoch, tip);
    }

    /// Pins a read snapshot at the last completed epoch; see
    /// [`crate::StateDb::pin`]. O(1): registers the epoch in the pin
    /// table, fencing version pruning below it.
    pub fn pin(&self) -> ShardedSnapshot {
        let inner = &self.inner;
        let mut pins = inner.pins.lock();
        let (epoch, height) = *inner.committed.read();
        // Epoch 0 = pre-genesis: the snapshot sees nothing, needs no
        // retained versions, so it does not fence pruning.
        if epoch > 0 {
            *pins.entry(epoch).or_insert(0) += 1;
        }
        drop(pins);
        ShardedSnapshot {
            inner: Arc::clone(&self.inner),
            epoch,
            height,
        }
    }

    /// Range scan over `[start, end)`, in key order: per-shard ordered
    /// scans k-way merged (shards partition the keyspace, so this is a
    /// cursor sweep, not a sort).
    pub fn range(&self, start: &str, end: &str) -> Vec<(String, VersionedValue)> {
        let mut per_shard: Vec<Vec<(String, VersionedValue)>> = Vec::new();
        for shard in &self.inner.shards {
            let g = shard.read();
            per_shard.push(
                g.map
                    .range(start.to_string()..end.to_string())
                    .filter_map(|(k, chain)| {
                        let newest = chain.last()?;
                        Some((
                            k.clone(),
                            VersionedValue {
                                value: newest.value.clone()?,
                                version: newest.height,
                            },
                        ))
                    })
                    .collect(),
            );
        }
        merge_sorted(per_shard, usize::MAX)
    }

    /// Number of live keys (O(shards): summed per-shard counters).
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().live).sum()
    }

    /// Whether the store has no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> StateDbStats {
        StateDbStats {
            // relaxed: approximate stats snapshot; counters are
            // independent and never gate data visibility
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Highest height ever applied (`None` = never committed).
    pub fn tip_height(&self) -> Option<Height> {
        self.inner.order.lock().tip
    }

    /// Full ordered dump of the live keys; see
    /// [`crate::StateDb::snapshot`].
    pub fn snapshot(&self) -> Vec<(String, VersionedValue)> {
        self.snapshot_chunks(crate::SNAPSHOT_CHUNK)
            .flatten()
            .collect()
    }

    /// Chunked snapshot iterator with the same fuzzy contract as the
    /// legacy store (see [`crate::StateDb::snapshot_chunks`]): each
    /// chunk visits the shard locks once, merges the per-shard tails
    /// after the cursor, and releases — writers interleave between
    /// chunks; keys behind the cursor are not revisited.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn snapshot_chunks(&self, chunk: usize) -> ShardedSnapshotChunks {
        assert!(chunk > 0, "snapshot chunk size must be non-zero");
        ShardedSnapshotChunks {
            db: self.clone(),
            cursor: None,
            chunk,
            done: false,
        }
    }

    /// MVCC validation of a read set (see
    /// [`crate::StateDb::mvcc_validate`]).
    pub fn mvcc_validate(&self, reads: &[(String, Option<Height>)]) -> bool {
        reads
            .iter()
            .all(|(key, expected)| self.get_version(key) == *expected)
    }
}

/// One write destined for a shard: key, value (`None` = delete), the
/// epoch of its batch, and the batch's commit height.
type GroupEntry<'a> = (&'a str, Option<&'a [u8]>, u64, Height);

/// Applies one shard's slice of a block under that shard's write lock,
/// pruning each touched chain below the retention fence.
fn apply_group(shard: &RwLock<Shard>, group: &[GroupEntry], horizon: u64) {
    let mut guard = shard.write();
    let g = &mut *guard;
    for &(key, value, epoch, height) in group {
        let entry = VersionEntry {
            epoch,
            height,
            value: value.map(|v| v.to_vec()),
        };
        match g.map.get_mut(key) {
            Some(chain) => {
                let was_live = chain.last().is_some_and(|e| e.value.is_some());
                let now_live = entry.value.is_some();
                chain.push(entry);
                prune_chain(chain, horizon);
                match (was_live, now_live) {
                    (false, true) => g.live += 1,
                    (true, false) => g.live -= 1,
                    _ => {}
                }
                // A chain of only tombstones reads as "absent" at every
                // epoch — exactly what a missing chain reads as. Drop
                // the key rather than let delete-heavy workloads
                // accumulate dead chains.
                if chain.iter().all(|e| e.value.is_none()) {
                    g.map.remove(key);
                }
            }
            None => {
                // A tombstone for an absent key carries no information:
                // readers at every epoch already resolve the key to
                // None. Only a put starts a chain.
                if entry.value.is_some() {
                    g.map.insert(key.to_string(), vec![entry]);
                    g.live += 1;
                }
            }
        }
    }
}

/// Drops chain entries no pinned or future reader can resolve: every
/// entry strictly before the newest entry at-or-below `horizon`. The
/// newest at-or-below entry itself is kept — it is the answer for any
/// reader pinned in `[horizon, its-successor)`.
fn prune_chain(chain: &mut Vec<VersionEntry>, horizon: u64) {
    let mut keep_from = 0;
    for (i, e) in chain.iter().enumerate() {
        if e.epoch <= horizon {
            keep_from = i;
        } else {
            break;
        }
    }
    if keep_from > 0 {
        chain.drain(..keep_from);
    }
}

/// Merges per-shard ascending runs into one ascending run, taking at
/// most `limit` entries. Runs are disjoint (shards partition the
/// keyspace), so a simple min-cursor sweep suffices.
fn merge_sorted(
    mut runs: Vec<Vec<(String, VersionedValue)>>,
    limit: usize,
) -> Vec<(String, VersionedValue)> {
    let mut cursors = vec![0usize; runs.len()];
    let mut out = Vec::new();
    while out.len() < limit {
        let mut min: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            if cursors[i] >= run.len() {
                continue;
            }
            min = Some(match min {
                Some(m) if runs[m][cursors[m]].0 <= run[cursors[i]].0 => m,
                _ => i,
            });
        }
        let Some(m) = min else { break };
        let idx = cursors[m];
        cursors[m] += 1;
        out.push(std::mem::replace(
            &mut runs[m][idx],
            (
                String::new(),
                VersionedValue {
                    value: Vec::new(),
                    version: Height::default(),
                },
            ),
        ));
    }
    out
}

/// Iterator over bounded snapshot chunks of a [`ShardedStateDb`]; see
/// [`ShardedStateDb::snapshot_chunks`].
#[derive(Debug)]
pub struct ShardedSnapshotChunks {
    db: ShardedStateDb,
    /// Last key yielded by the previous chunk; the next chunk resumes
    /// strictly after it.
    cursor: Option<String>,
    chunk: usize,
    done: bool,
}

impl Iterator for ShardedSnapshotChunks {
    type Item = Vec<(String, VersionedValue)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // Collect up to `chunk` entries after the cursor from each
        // shard (each shard lock held only for its own scan), then
        // merge down to the overall next `chunk` keys.
        let mut per_shard: Vec<Vec<(String, VersionedValue)>> = Vec::new();
        for shard in &self.db.inner.shards {
            let g = shard.read();
            let range = match &self.cursor {
                Some(last) => g.map.range::<str, _>((
                    std::ops::Bound::Excluded(last.as_str()),
                    std::ops::Bound::Unbounded,
                )),
                None => g.map.range::<str, _>((
                    std::ops::Bound::<&str>::Unbounded,
                    std::ops::Bound::Unbounded,
                )),
            };
            per_shard.push(
                range
                    .filter_map(|(k, chain)| {
                        let newest = chain.last()?;
                        Some((
                            k.clone(),
                            VersionedValue {
                                value: newest.value.clone()?,
                                version: newest.height,
                            },
                        ))
                    })
                    .take(self.chunk)
                    .collect(),
            );
        }
        let batch = merge_sorted(per_shard, self.chunk);
        if batch.len() < self.chunk {
            self.done = true;
        }
        let last = batch.last()?;
        self.cursor = Some(last.0.clone());
        Some(batch)
    }
}

/// A pinned read view of a [`ShardedStateDb`]: every read resolves
/// against the version chains at the pinned epoch. Created by
/// [`ShardedStateDb::pin`]; dropping it releases the prune fence.
#[derive(Debug)]
pub struct ShardedSnapshot {
    inner: Arc<SharedInner>,
    /// Pinned epoch (0 = pre-genesis, sees nothing).
    epoch: u64,
    /// Committed tip height at pin time (what callers reason about).
    height: Option<Height>,
}

impl ShardedSnapshot {
    /// The height this snapshot is pinned at.
    pub fn height(&self) -> Option<Height> {
        self.height
    }

    fn resolve(chain: &[VersionEntry], epoch: u64) -> Option<VersionedValue> {
        let e = chain.iter().rev().find(|e| e.epoch <= epoch)?;
        Some(VersionedValue {
            value: e.value.clone()?,
            version: e.height,
        })
    }

    /// Point read as of the pinned epoch.
    pub fn get(&self, key: &str) -> Option<VersionedValue> {
        if self.epoch == 0 {
            return None;
        }
        let idx = (fnv1a64(key.as_bytes()) % self.inner.shards.len() as u64) as usize;
        let g = self.inner.shards[idx].read();
        g.map
            .get(key)
            .and_then(|chain| Self::resolve(chain, self.epoch))
    }

    /// Version-only read as of the pinned epoch.
    pub fn get_version(&self, key: &str) -> Option<Height> {
        self.get(key).map(|v| v.version)
    }

    /// Range scan over `[start, end)` as of the pinned epoch.
    pub fn range(&self, start: &str, end: &str) -> Vec<(String, VersionedValue)> {
        if self.epoch == 0 {
            return Vec::new();
        }
        let mut per_shard: Vec<Vec<(String, VersionedValue)>> = Vec::new();
        for shard in &self.inner.shards {
            let g = shard.read();
            per_shard.push(
                g.map
                    .range(start.to_string()..end.to_string())
                    .filter_map(|(k, chain)| Some((k.clone(), Self::resolve(chain, self.epoch)?)))
                    .collect(),
            );
        }
        merge_sorted(per_shard, usize::MAX)
    }

    /// Full ordered dump as of the pinned epoch.
    pub fn snapshot(&self) -> Vec<(String, VersionedValue)> {
        if self.epoch == 0 {
            return Vec::new();
        }
        let mut per_shard: Vec<Vec<(String, VersionedValue)>> = Vec::new();
        for shard in &self.inner.shards {
            let g = shard.read();
            per_shard.push(
                g.map
                    .iter()
                    .filter_map(|(k, chain)| Some((k.clone(), Self::resolve(chain, self.epoch)?)))
                    .collect(),
            );
        }
        merge_sorted(per_shard, usize::MAX)
    }
}

impl Drop for ShardedSnapshot {
    fn drop(&mut self) {
        if self.epoch == 0 {
            return;
        }
        let mut pins = self.inner.pins.lock();
        if let Some(count) = pins.get_mut(&self.epoch) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.epoch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(db: &ShardedStateDb, key: &str, val: u8, h: Height) {
        let mut b = WriteBatch::new();
        b.put(key, vec![val]);
        db.apply(&b, h);
    }

    #[test]
    fn single_shard_degenerate_case_works() {
        let db = ShardedStateDb::with_shards(1);
        put(&db, "a", 1, Height::new(1, 0));
        put(&db, "b", 2, Height::new(1, 1));
        assert_eq!(db.len(), 2);
        let keys: Vec<String> = db.range("a", "z").into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn dead_tombstone_chains_are_dropped() {
        let db = ShardedStateDb::new();
        let pin0 = db.pin();
        // Deleting an absent key starts no chain...
        let mut d = WriteBatch::new();
        d.delete("ghost");
        db.apply(&d, Height::new(1, 0));
        assert_eq!(db.get("ghost"), None);
        assert_eq!(pin0.get("ghost"), None);
        drop(pin0);
        assert!(!db.inner.shards[db.shard_of("ghost")]
            .read()
            .map
            .contains_key("ghost"));
        // ...and deleting a live key leaves a chain only as long as a
        // pinned reader might still resolve the put below it.
        put(&db, "k", 1, Height::new(2, 0));
        let pin = db.pin();
        let mut d2 = WriteBatch::new();
        d2.delete("k");
        db.apply(&d2, Height::new(3, 0));
        assert_eq!(pin.get("k").unwrap().value, vec![1], "pin fences the put");
        assert!(db.inner.shards[db.shard_of("k")]
            .read()
            .map
            .contains_key("k"));
        drop(pin);
        // Next touch prunes the put; the all-tombstone chain drops.
        let mut d3 = WriteBatch::new();
        d3.delete("k");
        db.apply(&d3, Height::new(4, 0));
        assert!(
            !db.inner.shards[db.shard_of("k")]
                .read()
                .map
                .contains_key("k"),
            "dead tombstone chain should have been dropped"
        );
        assert_eq!(db.len(), 0);
    }

    #[test]
    fn chains_stay_short_without_pins() {
        let db = ShardedStateDb::new();
        for i in 0..100 {
            put(&db, "hot", i as u8, Height::new(i, 0));
        }
        let shard = db.inner.shards[db.shard_of("hot")].read();
        let chain = shard.map.get("hot").unwrap();
        assert!(
            chain.len() <= 2,
            "unpinned hot-key chain grew to {} entries",
            chain.len()
        );
    }

    #[test]
    fn pin_fences_pruning_and_drop_releases_it() {
        let db = ShardedStateDb::new();
        put(&db, "k", 0, Height::new(0, 0));
        let pin = db.pin();
        for i in 1..50 {
            put(&db, "k", i as u8, Height::new(i, 0));
        }
        // The pinned version must still resolve...
        assert_eq!(pin.get("k").unwrap().value, vec![0]);
        assert_eq!(pin.get("k").unwrap().version, Height::new(0, 0));
        drop(pin);
        // ...and after release, the next touch prunes the history.
        put(&db, "k", 99, Height::new(99, 0));
        let shard = db.inner.shards[db.shard_of("k")].read();
        assert!(shard.map.get("k").unwrap().len() <= 2);
    }

    #[test]
    fn version_boundary_height_zero_zero() {
        let db = ShardedStateDb::new();
        put(&db, "k", 7, Height::new(0, 0));
        assert_eq!(db.get_version("k"), Some(Height::new(0, 0)));
        assert_eq!(db.tip_height(), Some(Height::new(0, 0)));
        assert!(db.mvcc_validate(&[("k".into(), Some(Height::new(0, 0)))]));
    }

    #[test]
    fn same_key_twice_in_batch_is_last_op_wins() {
        let db = ShardedStateDb::new();
        let mut b = WriteBatch::new();
        b.put("k", vec![1]);
        b.delete("k");
        b.put("k", vec![3]);
        db.apply(&b, Height::new(1, 0));
        assert_eq!(db.get("k").unwrap().value, vec![3]);
        assert_eq!(db.len(), 1);

        let mut b2 = WriteBatch::new();
        b2.put("k", vec![4]);
        b2.delete("k");
        db.apply(&b2, Height::new(2, 0));
        assert_eq!(db.get("k"), None);
        assert_eq!(db.len(), 0);
    }

    #[test]
    fn parallel_apply_block_matches_sequential() {
        // Enough entries to clear PARALLEL_APPLY_THRESHOLD.
        let wide = ShardedStateDb::new();
        let serial = ShardedStateDb::new();
        let mut batches = Vec::new();
        for tx in 0..8u64 {
            let mut b = WriteBatch::new();
            for i in 0..64 {
                b.put(
                    format!("k{:03}", (tx * 37 + i) % 200),
                    vec![tx as u8, i as u8],
                );
            }
            batches.push((b, Height::new(1, tx)));
        }
        wide.apply_block(&batches);
        for (b, h) in &batches {
            serial.apply(b, *h);
        }
        assert_eq!(wide.snapshot(), serial.snapshot());
        assert_eq!(wide.tip_height(), serial.tip_height());
        assert_eq!(wide.len(), serial.len());
    }

    #[test]
    fn stats_count_reads_writes_misses() {
        let db = ShardedStateDb::new();
        db.get("nope");
        put(&db, "k", 1, Height::new(1, 0));
        db.get("k");
        let s = db.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn shard_count_independence_of_contents() {
        let mut snaps = Vec::new();
        for shards in [1, 3, 16] {
            let db = ShardedStateDb::with_shards(shards);
            for i in 0..100 {
                put(&db, &format!("key{i:03}"), i as u8, Height::new(1, i));
            }
            let mut d = WriteBatch::new();
            d.delete("key050");
            db.apply(&d, Height::new(2, 0));
            snaps.push(db.snapshot());
        }
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[1], snaps[2]);
    }
}
