//! Length + CRC record framing shared by every on-disk file in this
//! crate (block segments, the state journal, segment index sidecars and
//! the checkpoint).
//!
//! ```text
//! RECORD := len: u32 LE | crc32(payload): u32 LE | payload
//! ```
//!
//! A file is a plain concatenation of records written by a single
//! append-only writer, so a crash leaves at most a *prefix* of a record
//! at the tail. Scanning therefore distinguishes exactly three tail
//! states:
//!
//! * **clean** — the file ends on a record boundary;
//! * **torn** — the trailing bytes are shorter than the record they
//!   announce (the signature of a crash mid-write): recovery truncates
//!   them away;
//! * **corrupt** — a record is fully present but its CRC does not match
//!   (or its header is structurally impossible) *and* it is followed by
//!   further bytes. A single writer cannot produce that by crashing, so
//!   it is flagged as data corruption rather than silently truncated.
//!   A bad CRC on the *final* record is indistinguishable from a torn
//!   write under fsync-free commit and is treated as torn.

use crate::crc::crc32;

/// Upper bound on a single record payload (1 GiB) — a sanity guard so a
/// corrupted length field cannot drive a multi-gigabyte allocation.
pub const MAX_RECORD_LEN: usize = 1 << 30;

/// Bytes of the record header (length + CRC).
pub const HEADER_LEN: usize = 8;

/// Consumes the first `n` bytes of `bytes`, advancing the cursor;
/// `None` when fewer remain. The bounds-checked primitive every record
/// payload decoder in this crate is built on.
pub(crate) fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if bytes.len() < n {
        return None;
    }
    let (head, rest) = bytes.split_at(n);
    *bytes = rest;
    Some(head)
}

/// Serializes one framed record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_RECORD_LEN, "record payload too large");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    // lint:allow(truncating-cast) MAX_RECORD_LEN (asserted above) fits in u32
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// How a scanned byte stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// Ends exactly on a record boundary.
    Clean,
    /// Trailing partial record (crash artifact); `valid_len` excludes it.
    Torn,
    /// A complete record failed its CRC (or carried an impossible
    /// header) with more data after it — data corruption, not a crash.
    Corrupt {
        /// Byte offset of the bad record.
        offset: usize,
    },
}

/// Result of scanning a framed byte stream.
#[derive(Debug)]
pub struct Scan {
    /// `(offset, payload)` of each valid record, in file order.
    pub records: Vec<(usize, Vec<u8>)>,
    /// Bytes covered by the valid records (the truncation point when the
    /// tail is torn).
    pub valid_len: usize,
    /// State of the tail.
    pub tail: Tail,
}

/// Scans a byte stream into its valid record prefix. Never fails: the
/// tail classification tells the caller whether (and how) the stream
/// degraded.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < HEADER_LEN {
            return Scan {
                records,
                valid_len: offset,
                tail: Tail::Torn,
            };
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4-byte slice")) as usize;
        let expected_crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4-byte slice"));
        if len > MAX_RECORD_LEN {
            // An impossible length. The full 8-byte header is present
            // (checked above), and a torn write only ever removes a
            // suffix — so this length field was written as-is, and the
            // single writer never emits records this large: corruption,
            // not a crash, wherever it sits in the file.
            return Scan {
                records,
                valid_len: offset,
                tail: Tail::Corrupt { offset },
            };
        }
        if remaining.len() < HEADER_LEN + len {
            return Scan {
                records,
                valid_len: offset,
                tail: Tail::Torn,
            };
        }
        let payload = &remaining[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != expected_crc {
            // Fully-present record with a bad CRC: if bytes follow, a
            // single append-only writer cannot have crashed here.
            let tail = if remaining.len() > HEADER_LEN + len {
                Tail::Corrupt { offset }
            } else {
                Tail::Torn
            };
            return Scan {
                records,
                valid_len: offset,
                tail,
            };
        }
        records.push((offset, payload.to_vec()));
        offset += HEADER_LEN + len;
    }
    Scan {
        records,
        valid_len: offset,
        tail: Tail::Clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(payloads: &[&[u8]]) -> Vec<u8> {
        payloads.iter().flat_map(|p| encode_record(p)).collect()
    }

    #[test]
    fn roundtrip_and_clean_tail() {
        let bytes = stream(&[b"alpha", b"", b"gamma"]);
        let scan = scan(&bytes);
        assert_eq!(scan.tail, Tail::Clean);
        assert_eq!(scan.valid_len, bytes.len());
        let payloads: Vec<&[u8]> = scan.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"alpha".as_slice(), b"", b"gamma"]);
    }

    #[test]
    fn every_truncation_point_yields_a_record_prefix() {
        let bytes = stream(&[b"first", b"second", b"third-record"]);
        let full = scan(&bytes).records.len();
        assert_eq!(full, 3);
        for cut in 0..bytes.len() {
            let s = scan(&bytes[..cut]);
            // The valid prefix is always complete records.
            assert!(s.records.len() <= full);
            for ((_, got), want) in
                s.records
                    .iter()
                    .zip([b"first".as_slice(), b"second", b"third-record"])
            {
                assert_eq!(got.as_slice(), want);
            }
            // And never classified as corruption: truncation is a crash.
            assert!(!matches!(s.tail, Tail::Corrupt { .. }), "cut={cut}");
        }
    }

    #[test]
    fn interior_bitflip_is_corruption_tail_bitflip_is_torn() {
        let bytes = stream(&[b"first", b"second"]);
        // Flip a payload byte of the FIRST record: corruption (more
        // valid data follows).
        let mut interior = bytes.clone();
        interior[HEADER_LEN] ^= 0x01;
        match scan(&interior).tail {
            Tail::Corrupt { offset } => assert_eq!(offset, 0),
            t => panic!("expected Corrupt, got {t:?}"),
        }
        // Flip a payload byte of the LAST record: indistinguishable from
        // a torn tail under fsync-free commit.
        let mut tail = bytes.clone();
        let last = tail.len() - 1;
        tail[last] ^= 0x01;
        let s = scan(&tail);
        assert_eq!(s.tail, Tail::Torn);
        assert_eq!(s.records.len(), 1);
    }

    #[test]
    fn absurd_length_field_is_corruption_not_a_torn_tail() {
        // A fully-present header announcing an impossible length cannot
        // come from a torn write (tears only remove a suffix, and the
        // writer never emits such lengths): it must be flagged loudly,
        // even at the tail — silently truncating here would destroy any
        // records after the flipped length field.
        let good = encode_record(b"ok");
        let mut bytes = good.clone();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        let s = scan(&bytes);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.tail, Tail::Corrupt { offset: good.len() });
        // Same with further records after it (the interior case).
        bytes.extend_from_slice(&encode_record(b"after"));
        assert_eq!(scan(&bytes).tail, Tail::Corrupt { offset: good.len() });
        // A header torn mid-length-field stays a torn tail.
        let mut torn = good.clone();
        torn.extend_from_slice(&u32::MAX.to_le_bytes()[..3]);
        assert_eq!(scan(&torn).tail, Tail::Torn);
    }
}
