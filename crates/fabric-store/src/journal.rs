//! The write-ahead state journal.
//!
//! One framed record per [`StateDb::apply`] call — i.e. per *valid
//! transaction*, including transactions with empty write sets — in
//! commit order:
//!
//! ```text
//! RECORD payload := block u64 | tx u64 | n_entries u32 |
//!                   ( key_len u32 | key | tag u8 (0=delete, 1=put) |
//!                     [ value_len u32 | value ] )*
//! ```
//!
//! The journal is attached to the peer's [`StateDb`] as its
//! [`JournalSink`]: the state database forwards every batch here,
//! under its own write lock, *before* mutating memory — so the
//! journal's record order is exactly the apply order and a replayed
//! journal reproduces the state byte-for-byte. Records buffer in
//! process and reach the file in one `write` per group-commit window
//! (fsync-free, like the block segments).
//!
//! Atomicity is at record granularity: the frame CRC means a crash
//! mid-record yields the previous record boundary on recovery, never a
//! half-applied batch (`journal_batch_atomicity` in the integration
//! fault harness drives truncation through every prefix length).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fabric_statedb::{Height, JournalSink, StateDb, WriteBatch};
use parking_lot::Mutex;

use crate::frame::{self, Tail};
use crate::StoreOpenError;

/// Encodes one `(batch, height)` journal record payload.
pub fn encode_batch(batch: &WriteBatch, height: Height) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + 16 * batch.len());
    out.extend_from_slice(&height.block_num.to_le_bytes());
    out.extend_from_slice(&height.tx_num.to_le_bytes());
    let n = u32::try_from(batch.len()).expect("journal batch exceeds u32::MAX entries");
    out.extend_from_slice(&n.to_le_bytes());
    for (key, value) in batch.iter() {
        let klen = u32::try_from(key.len()).expect("journal key exceeds u32::MAX bytes");
        out.extend_from_slice(&klen.to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        match value {
            Some(v) => {
                out.push(1);
                let vlen = u32::try_from(v.len()).expect("journal value exceeds u32::MAX bytes");
                out.extend_from_slice(&vlen.to_le_bytes());
                out.extend_from_slice(v);
            }
            None => out.push(0),
        }
    }
    out
}

/// Decodes a journal record payload. `None` on any structural mismatch
/// (a CRC-passing record that does not parse is corruption, not a torn
/// write — the caller reports it).
pub fn decode_batch(payload: &[u8]) -> Option<(Height, WriteBatch)> {
    let take = frame::take;
    let mut rest = payload;
    let block = u64::from_le_bytes(
        take(&mut rest, 8)?
            .try_into()
            .expect("take(8) returned 8 bytes"),
    );
    let tx = u64::from_le_bytes(
        take(&mut rest, 8)?
            .try_into()
            .expect("take(8) returned 8 bytes"),
    );
    let n = u32::from_le_bytes(
        take(&mut rest, 4)?
            .try_into()
            .expect("take(4) returned 4 bytes"),
    );
    let mut batch = WriteBatch::new();
    for _ in 0..n {
        let klen = u32::from_le_bytes(
            take(&mut rest, 4)?
                .try_into()
                .expect("take(4) returned 4 bytes"),
        ) as usize;
        let key = std::str::from_utf8(take(&mut rest, klen)?)
            .ok()?
            .to_string();
        match take(&mut rest, 1)?[0] {
            1 => {
                let vlen = u32::from_le_bytes(
                    take(&mut rest, 4)?
                        .try_into()
                        .expect("take(4) returned 4 bytes"),
                ) as usize;
                batch.put(key, take(&mut rest, vlen)?.to_vec());
            }
            0 => {
                batch.delete(key);
            }
            _ => return None,
        }
    }
    if !rest.is_empty() {
        return None;
    }
    Some((Height::new(block, tx), batch))
}

/// Result of scanning a journal file at open.
#[derive(Debug)]
pub struct JournalScan {
    /// Decoded records with the byte offset where each record *ends* —
    /// the truncation candidates of the recovery min-rule.
    pub records: Vec<(u64, Height, WriteBatch)>,
    /// Bytes covered by valid records.
    pub valid_len: u64,
    /// Total file length found on disk.
    pub file_len: u64,
}

/// Scans the journal file into its valid record prefix. A torn tail is
/// reported through `valid_len < file_len`; interior corruption or a
/// record whose commit height goes backwards is an error.
///
/// # Errors
///
/// [`StoreOpenError::CorruptJournal`] for interior corruption,
/// [`StoreOpenError::Io`] on read failure.
pub fn scan_journal(path: &Path) -> Result<JournalScan, StoreOpenError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StoreOpenError::Io(format!("read journal: {e}"))),
    };
    let scan = frame::scan(&bytes);
    if let Tail::Corrupt { offset } = scan.tail {
        return Err(StoreOpenError::CorruptJournal {
            offset: offset as u64,
        });
    }
    let mut records = Vec::with_capacity(scan.records.len());
    let mut last: Option<Height> = None;
    for (offset, payload) in &scan.records {
        let (height, batch) = decode_batch(payload).ok_or(StoreOpenError::CorruptJournal {
            offset: *offset as u64,
        })?;
        // Commit order is strictly non-decreasing; a violation means the
        // file was tampered with, not torn.
        if last.is_some_and(|prev| height < prev) {
            return Err(StoreOpenError::CorruptJournal {
                offset: *offset as u64,
            });
        }
        last = Some(height);
        let end = *offset as u64 + frame::HEADER_LEN as u64 + payload.len() as u64;
        records.push((end, height, batch));
    }
    Ok(JournalScan {
        records,
        valid_len: scan.valid_len as u64,
        file_len: bytes.len() as u64,
    })
}

#[derive(Debug)]
struct JournalInner {
    file: File,
    buffered: Vec<u8>,
    pending: usize,
}

/// The append half of the journal; implements [`JournalSink`] so it
/// attaches directly to a [`StateDb`].
#[derive(Debug)]
pub struct StateJournal {
    path: PathBuf,
    group_commit: usize,
    inner: Mutex<JournalInner>,
}

impl StateJournal {
    /// Opens the journal for appending, first truncating the file to
    /// `keep_bytes` (the recovery min-rule's cut point).
    ///
    /// # Errors
    ///
    /// [`StoreOpenError::Io`] on filesystem failures.
    pub fn open_at(
        path: impl Into<PathBuf>,
        keep_bytes: u64,
        group_commit: usize,
    ) -> Result<Self, StoreOpenError> {
        assert!(group_commit > 0, "group_commit must be at least 1");
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreOpenError::Io(format!("open journal: {e}")))?;
        file.set_len(keep_bytes)
            .map_err(|e| StoreOpenError::Io(format!("truncate journal: {e}")))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreOpenError::Io(format!("seek journal: {e}")))?;
        Ok(StateJournal {
            path,
            group_commit,
            inner: Mutex::named(
                "store.journal",
                JournalInner {
                    file,
                    buffered: Vec::new(),
                    pending: 0,
                },
            ),
        })
    }

    /// The journal file path (diagnostics and the fault harness).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn flush_inner(inner: &mut JournalInner) {
        if !inner.buffered.is_empty() {
            inner
                .file
                .write_all(&inner.buffered)
                .expect("state journal write failed; cannot continue committing unlogged");
            inner.buffered.clear();
        }
        inner.pending = 0;
    }
}

impl JournalSink for StateJournal {
    fn record(&self, batch: &WriteBatch, height: Height) {
        let record = frame::encode_record(&encode_batch(batch, height));
        let mut inner = self.inner.lock();
        inner.buffered.extend_from_slice(&record);
        inner.pending += 1;
        if inner.pending >= self.group_commit {
            Self::flush_inner(&mut inner);
        }
    }

    fn flush(&self) {
        Self::flush_inner(&mut self.inner.lock());
    }
}

/// Replays scanned journal records into a state database: only records
/// with `after < block ≤ upto` are applied (records at or below a
/// checkpoint height are already folded into its snapshot; records
/// above the recovered block height belong to blocks that never made it
/// to the block store). Returns how many records were applied.
///
/// Both bounds are *recovered heights*, so `None` means "no such
/// height": `after: None` starts from genesis, while `upto: None`
/// means **no block was recovered and nothing is replayed** — it is
/// NOT an open upper bound. (For an unbounded replay pass
/// `Some(u64::MAX)`.)
pub fn replay(
    db: &StateDb,
    records: &[(u64, Height, WriteBatch)],
    after: Option<u64>,
    upto: Option<u64>,
) -> usize {
    let mut applied = 0;
    for (_, height, batch) in records {
        let skip_low = after.is_some_and(|c| height.block_num <= c);
        let skip_high = match upto {
            Some(k) => height.block_num > k,
            None => true,
        };
        if skip_low || skip_high {
            continue;
        }
        db.replay(batch, *height);
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrip() {
        let mut batch = WriteBatch::new();
        batch.put("alpha", vec![1, 2, 3]);
        batch.delete("beta");
        batch.put("", Vec::new());
        let payload = encode_batch(&batch, Height::new(7, 3));
        let (height, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(height, Height::new(7, 3));
        let entries: Vec<_> = decoded.iter().collect();
        assert_eq!(
            entries,
            vec![
                ("alpha", Some([1u8, 2, 3].as_slice())),
                ("beta", None),
                ("", Some([].as_slice())),
            ]
        );
    }

    #[test]
    fn empty_batch_roundtrips() {
        let payload = encode_batch(&WriteBatch::new(), Height::new(2, 0));
        let (height, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(height, Height::new(2, 0));
        assert!(decoded.is_empty());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let mut batch = WriteBatch::new();
        batch.put("key", vec![9; 40]);
        let payload = encode_batch(&batch, Height::new(1, 0));
        for cut in 0..payload.len() {
            assert!(decode_batch(&payload[..cut]).is_none(), "cut={cut}");
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode_batch(&extended).is_none(), "trailing garbage");
    }

    #[test]
    fn replay_respects_both_bounds() {
        let mut records = Vec::new();
        for block in 0..5u64 {
            let mut b = WriteBatch::new();
            b.put(format!("k{block}"), vec![block as u8]);
            records.push((0u64, Height::new(block, 0), b));
        }
        let db = StateDb::new();
        let applied = replay(&db, &records, Some(1), Some(3));
        assert_eq!(applied, 2);
        assert!(db.get("k1").is_none(), "at/below checkpoint skipped");
        assert!(db.get("k2").is_some() && db.get("k3").is_some());
        assert!(db.get("k4").is_none(), "above recovered height skipped");
    }
}
