//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the record
//! checksum of every on-disk frame in this crate. Implemented locally
//! because the offline toolchain has no registry crates; the constants
//! match the ubiquitous zlib/`crc32fast` definition, verified by the
//! standard check value below.

/// Lookup table for one byte per step, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint:allow(truncating-cast) i < 256, widening usize -> u32
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint:allow(truncating-cast) u8 -> u32 is a widening cast
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The universal CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
