//! The durable, segmented append-only block store.
//!
//! Layout (under `<root>/blocks/`):
//!
//! ```text
//! seg-00000.log   framed records, one marshaled block each
//! seg-00000.idx   sidecar index, written when the segment seals
//! seg-00001.log   ... the highest-numbered segment is the active one
//! ```
//!
//! Appends land in an in-process buffer and reach the file in one
//! `write` syscall per *group* of [`group_commit`](crate::StoreConfig)
//! blocks — fsync-free group commit: the store never calls `fsync`, so
//! the crash-recovery protocol (tail truncation + the min-rule in
//! [`crate::FabricStore::open`]) must — and does — tolerate an arbitrary
//! byte prefix surviving a crash.
//!
//! When the active segment grows past `segment_max_bytes` it is
//! *sealed*: flushed, its per-segment index sidecar written, and a new
//! active segment opened. At open, sealed segments with a valid sidecar
//! are indexed without re-reading their records (per-record CRCs are
//! still verified lazily on every [`DurableBlockStore::get`]); the
//! active segment is always scanned, and a torn tail — the signature of
//! a crash — is truncated away.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fabric_ledger::{BlockStore, CommittedBlock, StoreError};
use fabric_protos::messages::{metadata_index, Block};
use parking_lot::Mutex;

use crate::frame::{self, Tail, HEADER_LEN};
use crate::StoreOpenError;

/// One indexed record of a segment.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Byte offset of the record (header included) within its segment.
    offset: u64,
    /// Payload length.
    len: u32,
    /// Number of `Valid` flags in the block's transactions filter — the
    /// journal-coverage unit of the recovery min-rule.
    valid_count: u32,
}

/// One segment file and its in-memory index.
#[derive(Debug)]
struct Segment {
    path: PathBuf,
    first_block: u64,
    entries: Vec<Entry>,
}

/// The active segment's write half: the file handle, the group-commit
/// buffer, and how many bytes have actually reached the file.
#[derive(Debug)]
struct Writer {
    file: File,
    /// Bytes already written to the file (records below this offset are
    /// readable without a flush).
    file_len: u64,
    /// Encoded records awaiting the next group boundary.
    buffered: Vec<u8>,
    /// Appends since the last flush.
    pending: usize,
}

impl Writer {
    fn flush(&mut self) -> Result<(), StoreError> {
        if !self.buffered.is_empty() {
            self.file
                .write_all(&self.buffered)
                .map_err(|e| StoreError::new(format!("segment write: {e}")))?;
            self.file_len += self.buffered.len() as u64;
            self.buffered.clear();
        }
        self.pending = 0;
        Ok(())
    }
}

/// The durable block store. Implements [`fabric_ledger::BlockStore`],
/// so it plugs into [`fabric_ledger::Ledger::with_store`].
#[derive(Debug)]
pub struct DurableBlockStore {
    dir: PathBuf,
    group_commit: usize,
    segment_max_bytes: u64,
    segments: Vec<Segment>,
    total_blocks: u64,
    writer: Mutex<Writer>,
}

fn seg_log_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("seg-{index:05}.log"))
}

fn seg_idx_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("seg-{index:05}.idx"))
}

fn io_err(context: &str, e: std::io::Error) -> StoreOpenError {
    StoreOpenError::Io(format!("{context}: {e}"))
}

/// Counts `Valid` flags in a marshaled block's transactions filter, and
/// sanity-checks the structure enough to pin corruption to a number.
/// The byte → code mapping is [`fabric_ledger::TxValidationCode`]'s —
/// the same source `append` counts from — so the sidecar and rescan
/// paths can never disagree on what "valid" means.
fn parse_valid_count(payload: &[u8]) -> Option<u32> {
    let block = Block::unmarshal(payload).ok()?;
    let filter = &block.metadata.metadata[metadata_index::TRANSACTIONS_FILTER];
    if filter.len() != block.data.data.len() {
        return None;
    }
    Some(
        filter
            .iter()
            .filter(|&&b| {
                fabric_ledger::TxValidationCode::from_code(b).is_some_and(|c| c.is_valid())
            })
            // lint:allow(truncating-cast) tx count per block is far below u32::MAX
            .count() as u32,
    )
}

impl DurableBlockStore {
    /// Opens (or creates) the store under `dir`, truncating a torn tail
    /// of the active segment. Returns the store and the per-block
    /// valid-transaction counts of every readable block, which the
    /// recovery min-rule consumes.
    ///
    /// # Errors
    ///
    /// [`StoreOpenError::CorruptBlock`] when a record *inside* the valid
    /// region fails its CRC or does not parse as a block (a torn tail is
    /// not an error), [`StoreOpenError::Io`] on filesystem failures.
    pub fn open(
        dir: impl Into<PathBuf>,
        group_commit: usize,
        segment_max_bytes: u64,
    ) -> Result<(Self, Vec<u32>), StoreOpenError> {
        assert!(group_commit > 0, "group_commit must be at least 1");
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create blocks dir", e))?;

        // Enumerate segments by index; they are created contiguously.
        let mut seg_count = 0usize;
        while seg_log_path(&dir, seg_count).exists() {
            seg_count += 1;
        }
        if seg_count == 0 {
            File::create(seg_log_path(&dir, 0)).map_err(|e| io_err("create first segment", e))?;
            seg_count = 1;
        }

        let mut segments = Vec::with_capacity(seg_count);
        let mut valid_counts: Vec<u32> = Vec::new();
        let mut next_block = 0u64;
        let mut crashed = false;
        for index in 0..seg_count {
            let path = seg_log_path(&dir, index);
            let idx_path = seg_idx_path(&dir, index);
            if crashed {
                // Crash evidence in an earlier segment: everything after
                // it belongs to writes the crash outran. Drop it.
                let _ = std::fs::remove_file(&path);
                let _ = std::fs::remove_file(&idx_path);
                continue;
            }
            let is_last = index + 1 == seg_count;
            let entries = if is_last {
                // The active segment: scan, truncating a torn tail.
                scan_segment(&path, next_block)?
            } else {
                match load_sidecar(&idx_path, &path, next_block) {
                    Some(entries) => entries,
                    None => {
                        // A sealed segment whose sidecar is missing or
                        // inconsistent with the file: under fsync-free
                        // commit the OS may persist a later segment's
                        // creation before this one's tail, so a short
                        // sealed segment is crash evidence, not
                        // corruption — recover its prefix, drop the
                        // rest, and let chain verification police the
                        // content. (Interior CRC failures still error.)
                        crashed = true;
                        let _ = std::fs::remove_file(&idx_path);
                        scan_segment(&path, next_block)?
                    }
                }
            };
            valid_counts.extend(entries.iter().map(|e| e.valid_count));
            let first_block = next_block;
            next_block += entries.len() as u64;
            segments.push(Segment {
                path,
                first_block,
                entries,
            });
        }

        let active_path = segments.last().expect("at least one segment").path.clone();
        let file = OpenOptions::new()
            .append(true)
            .open(&active_path)
            .map_err(|e| io_err("open active segment", e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("stat active segment", e))?
            .len();
        let store = DurableBlockStore {
            dir,
            group_commit,
            segment_max_bytes,
            segments,
            total_blocks: next_block,
            writer: Mutex::named(
                "store.blockstore.writer",
                Writer {
                    file,
                    file_len,
                    buffered: Vec::new(),
                    pending: 0,
                },
            ),
        };
        Ok((store, valid_counts))
    }

    /// Drops every block numbered `>= keep` — the recovery min-rule's
    /// truncation. Later segments are deleted; the segment containing
    /// the cut becomes the active one (its sidecar, if any, is removed).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on filesystem failures.
    pub fn truncate_to(&mut self, keep: u64) -> Result<(), StoreError> {
        if keep >= self.total_blocks {
            return Ok(());
        }
        let seg_idx = self
            .segments
            .iter()
            .rposition(|s| s.first_block <= keep)
            .expect("segment 0 starts at block 0");
        // Remove whole later segments.
        for index in (seg_idx + 1)..self.segments.len() {
            let _ = std::fs::remove_file(seg_log_path(&self.dir, index));
            let _ = std::fs::remove_file(seg_idx_path(&self.dir, index));
        }
        self.segments.truncate(seg_idx + 1);
        // Cut the containing segment and make it the active writer.
        let seg = &mut self.segments[seg_idx];
        let keep_in_seg = (keep - seg.first_block) as usize;
        let cut_bytes = match seg.entries.get(keep_in_seg) {
            Some(entry) => entry.offset,
            None => seg
                .entries
                .last()
                .map(|e| e.offset + HEADER_LEN as u64 + e.len as u64)
                .unwrap_or(0),
        };
        seg.entries.truncate(keep_in_seg);
        let _ = std::fs::remove_file(seg_idx_path(&self.dir, seg_idx));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&seg.path)
            .map_err(|e| StoreError::new(format!("reopen segment for truncate: {e}")))?;
        file.set_len(cut_bytes)
            .map_err(|e| StoreError::new(format!("truncate segment: {e}")))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::new(format!("seek segment end: {e}")))?;
        *self.writer.lock() = Writer {
            file,
            file_len: cut_bytes,
            buffered: Vec::new(),
            pending: 0,
        };
        self.total_blocks = keep;
        Ok(())
    }

    /// Seals the active segment: flush, write the index sidecar, open
    /// the next segment.
    fn seal_active(&mut self) -> Result<(), StoreError> {
        let mut writer = self.writer.lock();
        writer.flush()?;
        let index = self.segments.len() - 1;
        write_sidecar(&seg_idx_path(&self.dir, index), &self.segments[index])?;
        let next_path = seg_log_path(&self.dir, index + 1);
        let file = File::create(&next_path)
            .map_err(|e| StoreError::new(format!("create next segment: {e}")))?;
        *writer = Writer {
            file,
            file_len: 0,
            buffered: Vec::new(),
            pending: 0,
        };
        drop(writer);
        self.segments.push(Segment {
            path: next_path,
            first_block: self.total_blocks,
            entries: Vec::new(),
        });
        Ok(())
    }

    /// Reads the record of block `number` from its segment, verifying
    /// the frame CRC.
    fn read_record(&self, number: u64) -> Option<Vec<u8>> {
        let seg_idx = self
            .segments
            .iter()
            .rposition(|s| s.first_block <= number)?;
        let seg = &self.segments[seg_idx];
        let entry = *seg.entries.get((number - seg.first_block) as usize)?;
        let record_end = entry.offset + HEADER_LEN as u64 + entry.len as u64;
        if seg_idx == self.segments.len() - 1 {
            // The record may still sit in the group-commit buffer; force
            // it down so the file read below sees it.
            let mut w = self.writer.lock();
            if record_end > w.file_len && w.flush().is_err() {
                return None;
            }
        }
        let mut file = File::open(&seg.path).ok()?;
        file.seek(SeekFrom::Start(entry.offset)).ok()?;
        let mut record = vec![0u8; HEADER_LEN + entry.len as usize];
        file.read_exact(&mut record).ok()?;
        let scan = frame::scan(&record);
        match (&scan.tail, scan.records.len()) {
            (Tail::Clean, 1) => Some(scan.records.into_iter().next().expect("one record").1),
            _ => None,
        }
    }
}

/// Scans a segment file into its entry index, truncating a torn tail
/// (a crash artifact). Interior corruption — a CRC-failing record with
/// valid data after it in the same file — is reported with the
/// offending block number.
fn scan_segment(path: &Path, first_block: u64) -> Result<Vec<Entry>, StoreOpenError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read segment", e))?;
    let scan = frame::scan(&bytes);
    match scan.tail {
        Tail::Clean => {}
        Tail::Torn => {
            // Crash artifact: drop the partial record.
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("reopen segment", e))?;
            file.set_len(scan.valid_len as u64)
                .map_err(|e| io_err("truncate torn tail", e))?;
        }
        Tail::Corrupt { .. } => {
            return Err(StoreOpenError::CorruptBlock {
                block: first_block + scan.records.len() as u64,
            });
        }
    }
    let mut entries = Vec::with_capacity(scan.records.len());
    for (i, (offset, payload)) in scan.records.iter().enumerate() {
        let valid_count = parse_valid_count(payload).ok_or(StoreOpenError::CorruptBlock {
            block: first_block + i as u64,
        })?;
        entries.push(Entry {
            offset: *offset as u64,
            // lint:allow(truncating-cast) record payloads are bounded by MAX_RECORD_LEN
            len: payload.len() as u32,
            valid_count,
        });
    }
    Ok(entries)
}

/// Sidecar payload: `first_block u64 | count u32 | (offset u64, len u32,
/// valid_count u32)*`, framed like every other record.
fn write_sidecar(path: &Path, seg: &Segment) -> Result<(), StoreError> {
    let mut payload = Vec::with_capacity(12 + seg.entries.len() * 16);
    payload.extend_from_slice(&seg.first_block.to_le_bytes());
    let count = u32::try_from(seg.entries.len()).expect("segment exceeds u32::MAX entries");
    payload.extend_from_slice(&count.to_le_bytes());
    for e in &seg.entries {
        payload.extend_from_slice(&e.offset.to_le_bytes());
        payload.extend_from_slice(&e.len.to_le_bytes());
        payload.extend_from_slice(&e.valid_count.to_le_bytes());
    }
    std::fs::write(path, frame::encode_record(&payload))
        .map_err(|e| StoreError::new(format!("write sidecar: {e}")))
}

/// Loads a sealed segment's sidecar if it is present, CRC-valid, and
/// consistent with the segment file's length and position in the chain;
/// otherwise the caller falls back to a full scan.
fn load_sidecar(idx_path: &Path, log_path: &Path, first_block: u64) -> Option<Vec<Entry>> {
    let bytes = std::fs::read(idx_path).ok()?;
    let scan = frame::scan(&bytes);
    if scan.tail != Tail::Clean || scan.records.len() != 1 {
        return None;
    }
    let payload = &scan.records[0].1;
    if payload.len() < 12 {
        return None;
    }
    let stored_first = u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice"));
    let count = u32::from_le_bytes(payload[8..12].try_into().expect("4-byte slice")) as usize;
    if stored_first != first_block || payload.len() != 12 + count * 16 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    let mut covered = 0u64;
    for i in 0..count {
        let at = 12 + i * 16;
        let offset = u64::from_le_bytes(payload[at..at + 8].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(payload[at + 8..at + 12].try_into().expect("4-byte slice"));
        let valid_count =
            u32::from_le_bytes(payload[at + 12..at + 16].try_into().expect("4-byte slice"));
        if offset != covered {
            return None;
        }
        covered = offset + HEADER_LEN as u64 + len as u64;
        entries.push(Entry {
            offset,
            len,
            valid_count,
        });
    }
    let file_len = std::fs::metadata(log_path).ok()?.len();
    if covered != file_len {
        return None;
    }
    Some(entries)
}

impl BlockStore for DurableBlockStore {
    fn len(&self) -> u64 {
        self.total_blocks
    }

    fn get(&self, number: u64) -> Option<CommittedBlock> {
        let payload = self.read_record(number)?;
        let block = Block::unmarshal(&payload).ok()?;
        CommittedBlock::from_stamped_block(block).ok()
    }

    fn append(&mut self, cb: &CommittedBlock) -> Result<(), StoreError> {
        let payload = cb.block.marshal();
        let record = frame::encode_record(&payload);
        let needs_seal = {
            let mut writer = self.writer.lock();
            let seg = self.segments.last_mut().expect("active segment");
            seg.entries.push(Entry {
                offset: writer.file_len + writer.buffered.len() as u64,
                // lint:allow(truncating-cast) record payloads are bounded by MAX_RECORD_LEN
                len: payload.len() as u32,
                // lint:allow(truncating-cast) tx count per block is far below u32::MAX
                valid_count: cb.tx_filter.iter().filter(|c| c.is_valid()).count() as u32,
            });
            writer.buffered.extend_from_slice(&record);
            writer.pending += 1;
            self.total_blocks += 1;
            if writer.pending >= self.group_commit {
                writer.flush()?;
            }
            writer.file_len + writer.buffered.len() as u64 >= self.segment_max_bytes
        };
        if needs_seal {
            self.seal_active()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.writer.lock().flush()
    }
}
