//! Durable block store + state journal for the validator peer.
//!
//! Vanilla Fabric commits validated blocks to a file-based block store
//! and a LevelDB state database (Androulaki et al., §4); until this
//! crate, the reproduction validated fast but forgot everything at
//! process exit. `fabric-store` adds the persistence layer and — more
//! importantly — the *crash-recovery protocol* that makes a peer
//! restart expressible:
//!
//! * [`blockstore`] — a segmented append-only block store (length+CRC
//!   framed records, per-segment index sidecars, fsync-free group
//!   commit) that plugs into [`fabric_ledger::Ledger`] through the
//!   [`fabric_ledger::BlockStore`] trait, with the in-memory store kept
//!   as the default and the differential oracle (the field/scalar
//!   backend convention);
//! * [`journal`] — a write-ahead journal of every
//!   [`fabric_statedb::StateDb::apply`], attached through
//!   [`fabric_statedb::JournalSink`], making state commits replayable;
//! * [`checkpoint`] — an atomic (tmp + rename) snapshot + tip-height
//!   checkpoint bounding recovery cost by the journal tail instead of
//!   chain length.
//!
//! # The recovery protocol (the min-rule)
//!
//! [`FabricStore::open`] must hand back a `(ledger, state)` pair that
//! is **exactly** the serial prefix a replay would have committed —
//! crash-at-any-byte-offset equivalence, gated by the fault-injection
//! harness in `tests/tests/store_recovery.rs`. Since commit is
//! fsync-free, a crash can strand the block store and the journal at
//! *different* prefixes; recovery reconciles them:
//!
//! 1. scan block segments, truncating a torn tail → blocks `0..b`;
//! 2. load the checkpoint if it is valid and within `0..b` → replay-from
//!    height `c` (corrupt or ahead-of-store checkpoints are discarded;
//!    the journal is never truncated below its content, so full replay
//!    from genesis always remains possible). A checkpoint captured while
//!    commits were in flight is *fuzzy*: its entries fully cover `..= c`
//!    plus an arbitrary subset of the writes in `(c, cover_to]`, and it
//!    is usable only when recovery reaches `cover_to` (step 4) so the
//!    idempotent replay of that window squares the image up — otherwise
//!    it is discarded like a corrupt one;
//! 3. scan the journal, truncating a torn tail; a block `n`'s state
//!    coverage is *complete* iff the journal holds exactly one record
//!    per `Valid` transaction of stored block `n` (the per-tx apply
//!    contract of the peer's commit stage);
//! 4. recovered height `k` = the longest prefix such that every block
//!    in `(c, k]` has complete journal coverage **and** is present in
//!    the block store — then truncate *both* files to `k` so the next
//!    session appends from a consistent boundary;
//! 5. restore the snapshot (or empty state), replay journal records in
//!    `(c, k]`, and reopen the ledger over the store —
//!    [`fabric_ledger::Ledger::with_store`] re-verifies the whole hash
//!    chain (header links, data hashes, commit hashes), pinning any
//!    surviving corruption to its block number.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fabric_ledger::{Ledger, LedgerError};
use fabric_statedb::{Height, StateBackend, StateDb};

pub mod blockstore;
pub mod checkpoint;
pub mod crc;
pub mod frame;
pub mod journal;

pub use blockstore::DurableBlockStore;
pub use journal::StateJournal;

/// Tuning knobs of the durable store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Blocks (and journal records) buffered per `write` syscall — the
    /// fsync-free group-commit window. `1` hands every commit straight
    /// to the OS; larger groups amortize syscalls at the cost of a
    /// longer tail a crash can lose. Measured at 1/8/64 by the
    /// `durability` section of `BENCH_validation.json`.
    pub group_commit: usize,
    /// Active-segment size threshold: crossing it seals the segment
    /// (flush + index sidecar) and opens the next one.
    pub segment_max_bytes: u64,
    /// State-database backend the store builds at open (checkpoint
    /// restore and journal replay both target it). Defaults to the
    /// process default ([`fabric_statedb::default_state_backend`]), so
    /// `FABRIC_STATE_BACKEND` reaches durable peers too; the recovery
    /// cross-check pins it explicitly to prove replay lands the same
    /// state on either backend.
    pub state_backend: StateBackend,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            group_commit: 8,
            segment_max_bytes: 4 * 1024 * 1024,
            state_backend: fabric_statedb::default_state_backend(),
        }
    }
}

/// Errors opening (recovering) a durable store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOpenError {
    /// Filesystem failure.
    Io(String),
    /// A block record inside the valid region is corrupted (bad CRC or
    /// unparsable with bytes following — a crash cannot produce that).
    CorruptBlock {
        /// Number of the offending block.
        block: u64,
    },
    /// A journal record inside the valid region is corrupted.
    CorruptJournal {
        /// Byte offset of the offending record.
        offset: u64,
    },
    /// The recovered chain failed ledger verification (hash links, data
    /// hashes, commit hashes).
    Chain {
        /// Number of the offending block.
        block: u64,
    },
}

impl fmt::Display for StoreOpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreOpenError::Io(msg) => write!(f, "store I/O error: {msg}"),
            StoreOpenError::CorruptBlock { block } => {
                write!(f, "corrupted block record for block {block}")
            }
            StoreOpenError::CorruptJournal { offset } => {
                write!(f, "corrupted journal record at byte {offset}")
            }
            StoreOpenError::Chain { block } => {
                write!(f, "stored chain failed verification at block {block}")
            }
        }
    }
}

impl std::error::Error for StoreOpenError {}

/// What [`FabricStore::open`] found and decided — surfaced so restart
/// flows (and the fault harness) can assert on the recovery outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blocks readable from the store before the min-rule.
    pub store_blocks_found: u64,
    /// Blocks recovered (the reopened chain height).
    pub recovered_blocks: u64,
    /// Blocks dropped by tail truncation or the min-rule.
    pub truncated_blocks: u64,
    /// Height of the checkpoint that was actually used.
    pub checkpoint_height: Option<Height>,
    /// A checkpoint file existed but was corrupt or ahead of the store,
    /// and recovery fell back to fuller journal replay.
    pub checkpoint_discarded: bool,
    /// Valid journal records found on disk.
    pub journal_records_found: usize,
    /// Journal records replayed into the recovered state.
    pub journal_records_replayed: usize,
    /// Journal bytes truncated (torn tail + records above the recovered
    /// height).
    pub journal_truncated_bytes: u64,
}

/// A durable peer storage root: the segmented block store, the state
/// journal, and the checkpoint, recovered together at open.
///
/// ```no_run
/// use fabric_store::{FabricStore, StoreConfig};
/// let store = FabricStore::open("/var/peer0", StoreConfig::default()).unwrap();
/// let (state_db, ledger) = (store.state_db(), store.ledger());
/// // hand both to ValidatorPipeline::with_storage(...), commit blocks,
/// // then persist the durability boundary:
/// store.flush().unwrap();
/// store.checkpoint().unwrap();
/// ```
#[derive(Debug)]
pub struct FabricStore {
    root: PathBuf,
    state_db: StateDb,
    ledger: Ledger,
    journal: Arc<StateJournal>,
    report: RecoveryReport,
}

/// Name of the block-segment directory inside the store root.
pub const BLOCKS_DIR: &str = "blocks";
/// Name of the journal file inside the store root.
pub const JOURNAL_FILE: &str = "journal.log";

impl FabricStore {
    /// Opens (creating if absent) and recovers the store under `root`.
    /// See the module docs for the recovery protocol.
    ///
    /// # Errors
    ///
    /// [`StoreOpenError`]: I/O failures, interior corruption pinned to a
    /// block number or journal offset, or chain-verification failure.
    pub fn open(root: impl Into<PathBuf>, config: StoreConfig) -> Result<Self, StoreOpenError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StoreOpenError::Io(format!("create store root: {e}")))?;

        // 1. Block store prefix (torn tail already truncated).
        let (mut blocks, valid_counts) = DurableBlockStore::open(
            root.join(BLOCKS_DIR),
            config.group_commit,
            config.segment_max_bytes,
        )?;
        let b = valid_counts.len() as u64;

        // 2. Checkpoint eligibility: must exist, parse, and describe a
        // fuzz window (`tip ..= cover_to`) the store still covers.
        let ckpt_present = checkpoint::exists(&root);
        let mut ckpt =
            checkpoint::load(&root).filter(|c| c.cover_to.is_none_or(|t| t.block_num < b));
        let mut c: Option<u64> = ckpt.as_ref().and_then(|c| c.tip).map(|t| t.block_num);

        // 3. Journal prefix and per-block coverage.
        let journal_path = root.join(JOURNAL_FILE);
        let jscan = journal::scan_journal(&journal_path)?;
        let mut coverage: HashMap<u64, u32> = HashMap::new();
        for (_, height, _) in &jscan.records {
            *coverage.entry(height.block_num).or_insert(0) += 1;
        }

        // 4. The min-rule walk: extend k while every block past the
        // checkpoint's replay-from tip has exactly its valid-tx count
        // journaled.
        let walk = |c: Option<u64>| -> Option<u64> {
            let mut k: Option<u64> = c;
            let start = c.map(|c| c + 1).unwrap_or(0);
            for n in start..b {
                let expected = valid_counts[n as usize];
                if coverage.get(&n).copied().unwrap_or(0) == expected {
                    k = Some(n);
                } else {
                    break;
                }
            }
            k
        };
        let mut k = walk(c);

        // 4b. Fuzzy-snapshot validity: the chunked snapshot may hold a
        // partial subset of the writes in `(tip, cover_to]`, which only
        // a *complete* journal replay of that window can square up. If
        // recovery cannot reach `cover_to`, the checkpoint is unusable —
        // fall back to full journal replay from genesis (quiescent
        // checkpoints have `cover_to == tip` and always pass).
        if let Some(cover) = ckpt.as_ref().and_then(|c| c.cover_to).map(|t| t.block_num) {
            if k.is_none_or(|k| k < cover) {
                ckpt = None;
                c = None;
                k = walk(None);
            }
        }
        let checkpoint_discarded = ckpt_present && ckpt.is_none();
        let recovered_len = k.map(|k| k + 1).unwrap_or(0);
        blocks
            .truncate_to(recovered_len)
            .map_err(|e| StoreOpenError::Io(e.to_string()))?;

        // Journal cut: keep everything through the last record of a
        // recovered block (records are in non-decreasing block order, so
        // the drop set is exactly the tail).
        let keep_bytes = jscan
            .records
            .iter()
            .rev()
            .find(|(_, h, _)| k.is_some_and(|k| h.block_num <= k))
            .map(|(end, _, _)| *end)
            .unwrap_or(0);
        let journal_truncated_bytes = jscan.file_len - keep_bytes;

        // 5. State restore + bounded replay, then the verified ledger.
        let state_db = match &ckpt {
            Some(ckpt) => StateDb::from_snapshot_with_backend(
                config.state_backend,
                ckpt.entries.clone(),
                ckpt.tip,
            ),
            None => StateDb::with_backend(config.state_backend),
        };
        let journal_records_found = jscan.records.len();
        let journal_records_replayed = journal::replay(&state_db, &jscan.records, c, k);
        let journal = Arc::new(StateJournal::open_at(
            journal_path,
            keep_bytes,
            config.group_commit,
        )?);
        let ledger = Ledger::with_store(Box::new(blocks)).map_err(|e| match e {
            LedgerError::Corrupt { block } => StoreOpenError::Chain { block },
            other => StoreOpenError::Io(other.to_string()),
        })?;
        state_db.attach_journal(journal.clone());

        Ok(FabricStore {
            root,
            state_db,
            ledger,
            journal,
            report: RecoveryReport {
                store_blocks_found: b,
                recovered_blocks: recovered_len,
                truncated_blocks: b - recovered_len,
                checkpoint_height: ckpt.and_then(|c| c.tip),
                checkpoint_discarded,
                journal_records_found,
                journal_records_replayed,
                journal_truncated_bytes,
            },
        })
    }

    /// The recovered (journal-attached) state database handle.
    pub fn state_db(&self) -> StateDb {
        self.state_db.clone()
    }

    /// The recovered ledger handle (durable block store underneath).
    pub fn ledger(&self) -> Ledger {
        self.ledger.clone()
    }

    /// What recovery found at open.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Forces every buffered commit down to the files — the durability
    /// boundary. Journal first, then the block store, preserving the
    /// write-ahead ordering across the two files.
    ///
    /// # Errors
    ///
    /// [`StoreOpenError::Io`] on write failure.
    pub fn flush(&self) -> Result<(), StoreOpenError> {
        use fabric_statedb::JournalSink;
        self.journal.flush();
        self.ledger
            .flush()
            .map_err(|e| StoreOpenError::Io(e.to_string()))
    }

    /// Takes an atomic checkpoint of the current state, bounding the
    /// next recovery's replay to the journal records above its
    /// replay-from tip. Safe to call *while commits are in flight*: the
    /// chunked state snapshot lets writers interleave, and the captured
    /// fuzz window (`tip ..= cover_to`) tells recovery which journal
    /// suffix squares the image up. Flushes before capture so the
    /// checkpoint never describes state the journal has not persisted,
    /// and again after a fuzzy capture so every record up to `cover_to`
    /// is durable before the rename makes the checkpoint visible.
    ///
    /// # Errors
    ///
    /// [`StoreOpenError::Io`] on write failure.
    pub fn checkpoint(&self) -> Result<Option<Height>, StoreOpenError> {
        self.flush()?;
        let ckpt = checkpoint::capture(&self.state_db);
        if ckpt.cover_to != ckpt.tip {
            self.flush()?;
        }
        checkpoint::publish(&self.root, &ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::WriteBatch;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fabric-store-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_store_opens_empty() {
        let dir = tempdir("fresh");
        let store = FabricStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.ledger().height(), 0);
        assert!(store.state_db().is_empty());
        assert_eq!(store.recovery().recovered_blocks, 0);
        assert!(!store.recovery().checkpoint_discarded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_only_state_survives_reopen() {
        // No blocks committed: the journal walk recovers nothing (state
        // without blocks is not a serial prefix), so direct applies
        // without ledger commits roll back to empty at reopen.
        let dir = tempdir("journal-only");
        {
            let store = FabricStore::open(
                &dir,
                StoreConfig {
                    group_commit: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut b = WriteBatch::new();
            b.put("k", vec![1]);
            store.state_db().apply(&b, Height::new(0, 0));
            store.flush().unwrap();
        }
        let store = FabricStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.recovery().journal_records_found, 1);
        assert_eq!(store.recovery().recovered_blocks, 0);
        assert!(
            store.state_db().is_empty(),
            "state without its block is not a serial prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
