//! Atomic state checkpoints.
//!
//! A checkpoint is one framed record holding a full [`StateDb`]
//! snapshot plus the tip height it was taken at, written to a temporary
//! file and `rename`d over `checkpoint.bin` — so the visible checkpoint
//! is always either the old or the new one, never a torn mix. Recovery
//! cost is thereby bounded by the journal *tail*: restore the snapshot,
//! replay only the records above its height.
//!
//! The journal is deliberately **not** truncated when a checkpoint is
//! taken: if `checkpoint.bin` is later found corrupted (bit rot, not a
//! crash — rename atomicity rules out torn checkpoints), recovery falls
//! back to replaying the full journal from genesis and still converges
//! to the same state. Journal compaction below the *previous* checkpoint
//! is future work (see the crate README).

use std::path::Path;

use fabric_statedb::{Height, StateDb, VersionedValue};

use crate::frame::{self, Tail};
use crate::StoreOpenError;

/// File name of the visible checkpoint inside the store root.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// A loaded checkpoint: the snapshot entries plus the two tip heights
/// that bracket the (possibly fuzzy) snapshot.
#[derive(Debug)]
pub struct Checkpoint {
    /// Ordered `(key, value)` entries of the snapshot.
    pub entries: Vec<(String, VersionedValue)>,
    /// State tip observed *before* the snapshot started (`None` for a
    /// pre-genesis snapshot). Everything at or below this height is
    /// fully folded into `entries`; journal replay resumes above it.
    pub tip: Option<Height>,
    /// State tip observed *after* the snapshot finished. The chunked
    /// [`StateDb::snapshot`] releases its lock between chunks, so
    /// `entries` may additionally contain a *subset* of the writes in
    /// `(tip, cover_to]` — recovery must have complete journal coverage
    /// through `cover_to` (replaying that window is idempotent and
    /// completes the partial subset) or discard the checkpoint. Equal
    /// to `tip` when the snapshot ran quiescent.
    pub cover_to: Option<Height>,
}

fn encode_tip(out: &mut Vec<u8>, tip: Option<Height>) {
    match tip {
        Some(h) => {
            out.push(1);
            out.extend_from_slice(&h.block_num.to_le_bytes());
            out.extend_from_slice(&h.tx_num.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn encode(
    entries: &[(String, VersionedValue)],
    tip: Option<Height>,
    cover_to: Option<Height>,
) -> Vec<u8> {
    let mut out = Vec::new();
    encode_tip(&mut out, tip);
    encode_tip(&mut out, cover_to);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, v) in entries {
        let klen = u32::try_from(key.len()).expect("checkpoint key exceeds u32::MAX bytes");
        out.extend_from_slice(&klen.to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        let vlen = u32::try_from(v.value.len()).expect("checkpoint value exceeds u32::MAX bytes");
        out.extend_from_slice(&vlen.to_le_bytes());
        out.extend_from_slice(&v.value);
        out.extend_from_slice(&v.version.block_num.to_le_bytes());
        out.extend_from_slice(&v.version.tx_num.to_le_bytes());
    }
    out
}

fn decode_tip(rest: &mut &[u8]) -> Option<Option<Height>> {
    match frame::take(rest, 1)?[0] {
        1 => Some(Some(Height::new(
            u64::from_le_bytes(
                frame::take(rest, 8)?
                    .try_into()
                    .expect("take(8) returned 8 bytes"),
            ),
            u64::from_le_bytes(
                frame::take(rest, 8)?
                    .try_into()
                    .expect("take(8) returned 8 bytes"),
            ),
        ))),
        0 => Some(None),
        _ => None,
    }
}

fn decode(payload: &[u8]) -> Option<Checkpoint> {
    let take = frame::take;
    let mut rest = payload;
    let tip = decode_tip(&mut rest)?;
    let cover_to = decode_tip(&mut rest)?;
    // A fuzzy snapshot can only run *ahead* of its starting tip.
    if cover_to < tip {
        return None;
    }
    let n = u64::from_le_bytes(
        take(&mut rest, 8)?
            .try_into()
            .expect("take(8) returned 8 bytes"),
    );
    let mut entries = Vec::new();
    for _ in 0..n {
        let klen = u32::from_le_bytes(
            take(&mut rest, 4)?
                .try_into()
                .expect("take(4) returned 4 bytes"),
        ) as usize;
        let key = std::str::from_utf8(take(&mut rest, klen)?)
            .ok()?
            .to_string();
        let vlen = u32::from_le_bytes(
            take(&mut rest, 4)?
                .try_into()
                .expect("take(4) returned 4 bytes"),
        ) as usize;
        let value = take(&mut rest, vlen)?.to_vec();
        let version = Height::new(
            u64::from_le_bytes(
                take(&mut rest, 8)?
                    .try_into()
                    .expect("take(8) returned 8 bytes"),
            ),
            u64::from_le_bytes(
                take(&mut rest, 8)?
                    .try_into()
                    .expect("take(8) returned 8 bytes"),
            ),
        );
        entries.push((key, VersionedValue { value, version }));
    }
    if !rest.is_empty() {
        return None;
    }
    Some(Checkpoint {
        entries,
        tip,
        cover_to,
    })
}

/// Captures a (possibly fuzzy) snapshot of `db`: the replay-from tip is
/// read *before* the chunked snapshot starts and the cover-to tip after
/// it finishes, bracketing whatever concurrent commits interleaved with
/// the copy. Publish it with [`publish`] — callers with a journal
/// (`FabricStore`) flush between capture and publish so every record up
/// to `cover_to` is durable before the checkpoint claims the window.
pub fn capture(db: &StateDb) -> Checkpoint {
    let tip = db.tip_height();
    let entries = db.snapshot();
    let cover_to = db.tip_height();
    Checkpoint {
        entries,
        tip,
        cover_to,
    }
}

/// Atomically publishes a captured checkpoint into `root` (tmp +
/// rename), returning its replay-from tip.
///
/// # Errors
///
/// [`StoreOpenError::Io`] on filesystem failures.
pub fn publish(root: &Path, ckpt: &Checkpoint) -> Result<Option<Height>, StoreOpenError> {
    let record = frame::encode_record(&encode(&ckpt.entries, ckpt.tip, ckpt.cover_to));
    let tmp = root.join(CHECKPOINT_TMP);
    std::fs::write(&tmp, &record).map_err(|e| StoreOpenError::Io(format!("write tmp: {e}")))?;
    std::fs::rename(&tmp, root.join(CHECKPOINT_FILE))
        .map_err(|e| StoreOpenError::Io(format!("rename checkpoint: {e}")))?;
    Ok(ckpt.tip)
}

/// Captures and publishes in one call — correct when no writer runs
/// concurrently (tests, quiescent stores). `FabricStore::checkpoint`
/// inserts a journal flush between the two steps instead.
///
/// # Errors
///
/// [`StoreOpenError::Io`] on filesystem failures.
pub fn write(root: &Path, db: &StateDb) -> Result<Option<Height>, StoreOpenError> {
    publish(root, &capture(db))
}

/// Loads the checkpoint if one exists and passes integrity checks.
/// `None` covers both "no checkpoint yet" and "checkpoint corrupted" —
/// the caller falls back to full journal replay either way (and reports
/// which through [`crate::RecoveryReport`]'s flags).
pub fn load(root: &Path) -> Option<Checkpoint> {
    let bytes = std::fs::read(root.join(CHECKPOINT_FILE)).ok()?;
    let scan = frame::scan(&bytes);
    if scan.tail != Tail::Clean || scan.records.len() != 1 {
        return None;
    }
    decode(&scan.records[0].1)
}

/// Whether a checkpoint file is present on disk (used to distinguish
/// "absent" from "present but corrupt" in the recovery report).
pub fn exists(root: &Path) -> bool {
    root.join(CHECKPOINT_FILE).exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::WriteBatch;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fabric-store-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_snapshot_and_tip() {
        let dir = tempdir("roundtrip");
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("alpha", vec![1, 2]);
        b.put("beta", Vec::new());
        db.apply(&b, Height::new(3, 1));
        let tip = write(&dir, &db).unwrap();
        assert_eq!(tip, Some(Height::new(3, 1)));
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.tip, tip);
        assert_eq!(loaded.cover_to, tip, "quiescent capture: no fuzz window");
        assert_eq!(loaded.entries, db.snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_loads_as_none() {
        let dir = tempdir("corrupt");
        let db = StateDb::new();
        let mut b = WriteBatch::new();
        b.put("k", vec![7]);
        db.apply(&b, Height::new(1, 0));
        write(&dir, &db).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&dir).is_none(), "flipped byte must fail the CRC");
        assert!(exists(&dir));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_loads_as_none() {
        let dir = tempdir("missing");
        assert!(load(&dir).is_none());
        assert!(!exists(&dir));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
